// Example: routing control and routing *around* control (§V-A-4).
//
// An AS-level story: provider routing (Gao-Rexford path vector) gives a
// multihomed stub exactly one exit; user source routing surfaces both, but
// the second one must be paid for; and when the direct path is filtered, an
// overlay tunnels around the chokepoint on the real packet network.
#include <iostream>

#include "core/tussle.hpp"

using namespace tussle;

int main() {
  std::cout << "Route-around walkthrough\n========================\n";

  // AS topology: stub 7 buys from 4 and 5; 4,5 buy from tier-1 peers 1,2.
  routing::AsGraph g;
  g.add_peering(1, 2);
  g.add_customer_provider(4, 1);
  g.add_customer_provider(5, 2);
  g.add_customer_provider(7, 4);
  g.add_customer_provider(7, 5);
  g.add_customer_provider(6, 1);
  // AS8 buys transit from nobody; it only peers with stub 7.
  g.add_as(8);
  g.add_peering(7, 8);

  // --- 1. What the providers decide for you -------------------------------
  std::cout << "\n[1] Provider-controlled routing (BGP analogue):\n";
  routing::PathVector pv(g);
  auto outcome = pv.compute(/*dest=*/6);
  const auto& chosen = outcome.routes.at(7);
  std::cout << "  AS7 -> AS6 via:";
  for (auto as : chosen.as_path) std::cout << " " << as;
  std::cout << "  (converged in " << outcome.rounds << " rounds, one path, no say)\n";

  // --- 2. What the user could express --------------------------------------
  std::cout << "\n[2] User-controlled source routing (NIRA-flavoured):\n";
  routing::SourceRouteBuilder builder(g);
  econ::Ledger ledger;
  econ::PaidTransit transit(g, ledger);
  transit.set_transit_price(5, 2.0);
  transit.set_transit_price(2, 1.5);
  for (const auto& path : builder.k_shortest_paths(7, 6, 3)) {
    auto quote = transit.quote(path);
    std::cout << "  candidate:";
    for (auto as : path) std::cout << " " << as;
    std::cout << (quote.paid_ases.empty() ? "  — free (valley-free)\n" : "  — paid\n");
  }

  // The peer-only AS8 has NO provider route to 6 at all (7 will not give a
  // peer free transit)...
  auto pv8 = pv.compute(6).routes.count(8);
  std::cout << "  provider routing gives AS8 a route to AS6? " << (pv8 ? "yes" : "no") << "\n";
  // ...but a *paid* source route through 7 works: value must flow.
  transit.set_transit_price(7, 2.0);
  if (auto quote = transit.best_quote(8, 6, 4)) {
    std::cout << "  paid source route for AS8:";
    for (auto as : quote->path) std::cout << " " << as;
    std::cout << "  (pays " << quote->total_price << " to";
    for (auto as : quote->paid_ases) std::cout << " AS" << as;
    std::cout << ")\n";
    transit.settle("user:8", *quote);
  }
  std::cout << "  AS8 balance after settlement: " << ledger.balance("user:8")
            << ", AS7 earned: " << ledger.balance("as:7") << "\n";

  // --- 3. The packet-level counter-move ------------------------------------
  std::cout << "\n[3] Overlay vs chokepoint on the data plane:\n";
  sim::Simulator sim(5);
  net::Network net(sim);
  auto ids = net::build_star(net, 3, 1, net::LinkSpec{});
  std::vector<net::Address> addrs;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    net::Address a{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
    net.node(ids[i]).add_address(a);
    addrs.push_back(a);
  }
  routing::LinkState ls(net);
  ls.install_routes(ids);
  // Hub blocks web between leaf 1 and leaf 3.
  net.node(ids[0]).add_filter(net::PacketFilter{
      .name = "chokepoint",
      .disclosed = false,
      .fn = [&](const net::Packet& p) {
        if (p.observable_proto() == net::AppProto::kWeb && p.src == addrs[1] &&
            p.dst == addrs[3]) {
          return net::FilterDecision::drop("blocked");
        }
        return net::FilterDecision::accept();
      }});
  net::Packet direct;
  direct.src = addrs[1];
  direct.dst = addrs[3];
  direct.proto = net::AppProto::kWeb;
  net.node(ids[1]).originate(std::move(direct));
  sim.run();
  std::cout << "  direct: delivered=" << net.counters().delivered.value()
            << " filtered=" << net.counters().dropped_filter.value() << "\n";

  routing::Overlay overlay(net, {{ids[1], addrs[1]}, {ids[2], addrs[2]}, {ids[3], addrs[3]}});
  overlay.set_edge_cost(ids[1], ids[2], 1.0);
  overlay.set_edge_cost(ids[2], ids[3], 1.0);
  net::Packet via;
  via.src = addrs[1];
  via.dst = addrs[3];
  via.proto = net::AppProto::kWeb;
  auto path = overlay.send(ids[1], ids[3], std::move(via));
  sim.run();
  std::cout << "  overlay relay via " << path.size() - 2
            << " member(s): delivered=" << net.counters().delivered.value() << "\n";

  std::cout << "\nThe overlay is 'a tool in the tussle, certainly' — and the\n"
               "payment ledger is the piece whose absence the paper blames for\n"
               "source routing never working.\n";
  return 0;
}
