// Example: the §V-B/§VI-A control-point loop, end to end.
//
//   1. A default-deny firewall protects a user; their new app breaks.
//   2. Fault diagnosis: the disclosed firewall *names itself* to a probe
//      ("tools to resolve and isolate faults" — §IV-C).
//   3. Negotiation: the endpoint asks for a pinhole (MIDCOM-style).
//   4. Who may grant it depends on who holds policy authority — the
//      governance tussle, played three ways.
//
// The three ways are one core::ScenarioSpec with policy authority as the
// axis. Each run plays the identical mechanism under a different authority
// and records its story via ctx.note(); run_sweep() may evaluate the runs
// concurrently, and the replay below is still in axis order.
#include <iostream>

#include "apps/diagnostics.hpp"
#include "core/tussle.hpp"
#include "trust/midcom.hpp"

using namespace tussle;

namespace {

const char* outcome_name(apps::FaultProbe::Outcome o) {
  switch (o) {
    case apps::FaultProbe::Outcome::kDelivered: return "delivered";
    case apps::FaultProbe::Outcome::kFilteredReported: return "filtered (attributed)";
    case apps::FaultProbe::Outcome::kSilentLoss: return "silent loss";
  }
  return "?";
}

constexpr trust::PolicyAuthority kAuthorities[] = {
    trust::PolicyAuthority::kEndUser,
    trust::PolicyAuthority::kNetworkAdmin,
    trust::PolicyAuthority::kGovernment,
};

}  // namespace

int main() {
  std::cout << "Negotiated-firewall walkthrough\n===============================\n\n";

  core::ScenarioSpec spec;
  spec.name = "negotiated-firewall";
  spec.description = "diagnose + negotiate a default-deny firewall per policy authority";
  spec.grid.axis("authority", {0, 1, 2});
  spec.body = [](core::RunContext& ctx) {
    const auto authority = kAuthorities[static_cast<std::size_t>(ctx.param("authority"))];

    sim::Simulator sim(ctx.rng().next_u64());
    net::Network net(sim);
    net.enable_fault_reporting(true);
    auto ids = net::build_star(net, 2, 1, net::LinkSpec{});
    std::vector<net::Address> addrs;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      net::Address a{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
      net.node(ids[i]).add_address(a);
      addrs.push_back(a);
    }
    routing::LinkState ls(net);
    ls.install_routes(ids);

    // Broker first (its bypass must pre-empt the firewall), then the
    // default-deny firewall: web is permitted, everything else forbidden.
    trust::PinholeBroker broker(net, ids[0], authority);
    broker.admin_allow(net::AppProto::kVoip);  // the admin's negotiable set
    policy::PolicySet ps(policy::standard_packet_ontology(), policy::Effect::kDeny);
    ps.add("allow-web", policy::Effect::kPermit, "proto == 'web'", "application");
    // Signalling must flow or nothing can be diagnosed or negotiated.
    ps.add("allow-control", policy::Effect::kPermit, "proto == 'control'", "application");
    net.node(ids[0]).add_filter(policy::make_packet_filter("fw", /*disclosed=*/true, ps));

    auto mux1 = apps::AppMux::install(net.node(ids[1]));
    auto mux2 = apps::AppMux::install(net.node(ids[2]));
    apps::FaultProbe probe(net, ids[1], mux1, mux2);

    // Step 1-2: the new app (an unproven protocol) fails; diagnose it.
    auto before = probe.probe(addrs[1], addrs[2], net::AppProto::kP2p);
    std::string diag = "  new app before negotiation: ";
    diag += outcome_name(before.outcome);
    if (before.outcome == apps::FaultProbe::Outcome::kFilteredReported) {
      diag += " by node " + std::to_string(before.reporting_node) + " (" + before.reason + ")";
    }
    ctx.note(diag);

    // Step 3: ask for pinholes for the new app and for VoIP.
    for (auto proto : {net::AppProto::kP2p, net::AppProto::kVoip}) {
      auto grant = broker.request({"user1", addrs[1], proto, "let my app work"});
      ctx.note("  pinhole for " + std::string(net::to_string(proto)) + ": " +
               (grant.granted ? "GRANTED" : "refused") + " — " + grant.reason);
      ctx.put(std::string(net::to_string(proto)) + ".granted", grant.granted ? 1.0 : 0.0);
    }

    // Step 4: verify with fresh probes.
    auto p2p_after = probe.probe(addrs[1], addrs[2], net::AppProto::kP2p);
    auto voip_after = probe.probe(addrs[1], addrs[2], net::AppProto::kVoip);
    ctx.note("  after negotiation: p2p=" + std::string(outcome_name(p2p_after.outcome)) +
             ", voip=" + std::string(outcome_name(voip_after.outcome)));
  };

  const auto res = core::run_sweep(spec);
  for (std::size_t p = 0; p < res.points.size(); ++p) {
    std::cout << "--- policy authority: " << to_string(kAuthorities[p]) << " ---\n";
    for (const auto& line : res.run(p, 0).notes) std::cout << line << "\n";
    std::cout << "\n";
  }

  std::cout << "The mechanism is identical in all three runs; only the holder of\n"
               "policy authority changes — \"there is no single answer, and we\n"
               "better not think we are going to design it. All we can design is\n"
               "the space for the tussle.\"\n";
  return 0;
}
