// Example: the economics tussle end to end (§V-A).
//
// A town with three ISPs. We watch the same market under three addressing
// regimes (the lock-in lever), then let one ISP try value pricing and see
// the game-theoretic response, and finally ask whether anyone would invest
// in QoS here.
//
// Each question is a core::ScenarioSpec evaluated by run_sweep(): the axis
// is the thing being varied (addressing regime, competition, design) and
// every run draws its randomness from its own ctx.rng() stream, so the
// tables below are bit-identical no matter how many workers ran them.
#include <iostream>

#include "core/tussle.hpp"

using namespace tussle;

namespace {
constexpr econ::AddressingMode kModes[] = {
    econ::AddressingMode::kStaticProviderAssigned,
    econ::AddressingMode::kDhcpDynamicDns,
    econ::AddressingMode::kProviderIndependent,
};
}  // namespace

int main() {
  std::cout << "ISP marketplace walkthrough\n===========================\n";

  // --- 1. Lock-in: how addressing policy shapes retail prices ------------
  std::cout << "\n[1] Same town, three addressing regimes (SV-A-1)\n\n";
  core::ScenarioSpec lockin;
  lockin.name = "lockin";
  lockin.description = "retail prices under three addressing regimes";
  lockin.grid.axis("mode", {0, 1, 2});
  lockin.body = [](core::RunContext& ctx) {
    econ::LockInModel model;
    const auto mode = kModes[static_cast<std::size_t>(ctx.param("mode"))];
    const double pain = model.switching_cost(mode, /*hosts=*/8);
    econ::MarketConfig cfg;
    cfg.switching_cost = pain;
    cfg.periods = 500;
    std::vector<econ::ProviderConfig> isps(3);
    for (std::size_t i = 0; i < isps.size(); ++i) isps[i].name = "isp" + std::to_string(i);
    econ::Market market(cfg, isps, ctx.rng());
    auto r = market.run();
    ctx.put("switching_pain", pain);
    ctx.put("mean_price", r.mean_price);
  };
  const auto r1 = core::run_sweep(lockin);
  core::Table t1({"regime", "switching-pain", "mean-price", "who-wins"});
  for (std::size_t p = 0; p < r1.points.size(); ++p) {
    const double price = r1.mean(p, "mean_price");
    t1.add_row({to_string(kModes[p]), r1.mean(p, "switching_pain"), price,
                std::string(price > 6 ? "providers" : "consumers")});
  }
  t1.print(std::cout);

  // --- 2. Value pricing: one ISP tries a server surcharge ----------------
  std::cout << "\n[2] The value-pricing gambit (SV-A-2)\n\n";
  core::ScenarioSpec pricing;
  pricing.name = "value-pricing";
  pricing.description = "server-surcharge equilibrium vs market contestability";
  pricing.grid.axis("competition", {0.1, 0.9});
  pricing.body = [](core::RunContext& ctx) {
    auto g = game::value_pricing_game(1.0, ctx.param("competition"));
    auto eq = game::learn_equilibrium(g, 20000, ctx.rng());
    ctx.put("isp_plays_value_pricing", eq.col[1]);
    ctx.put("users_tunnel", eq.row[1]);
  };
  const auto r2 = core::run_sweep(pricing);
  core::Table t2({"market", "isp-plays-value-pricing", "users-tunnel"});
  t2.add_row({std::string("captive (low competition)"),
              r2.mean(0, "isp_plays_value_pricing"), r2.mean(0, "users_tunnel")});
  t2.add_row({std::string("contestable (high competition)"),
              r2.mean(1, "isp_plays_value_pricing"), r2.mean(1, "users_tunnel")});
  t2.print(std::cout);

  // --- 3. Would anyone build QoS here? -----------------------------------
  std::cout << "\n[3] The QoS investment question (SVII)\n\n";
  core::ScenarioSpec invest;
  invest.name = "qos-investment";
  invest.description = "deployment with and without value flow + user choice";
  invest.grid.axis("variant", {0, 1});
  invest.body = [](core::RunContext& ctx) {
    econ::InvestmentConfig cfg;
    cfg.value_flow = ctx.param("variant") == 1;
    cfg.user_choice = ctx.param("variant") == 1;
    auto r = econ::run_investment(cfg, ctx.rng());
    ctx.put("deploy_fraction", r.final_deploy_fraction);
    ctx.put("open_service", r.open_service_available ? 1.0 : 0.0);
  };
  const auto r3 = core::run_sweep(invest);
  core::Table t3({"design", "deployment", "open-to-new-apps"});
  for (std::size_t p = 0; p < r3.points.size(); ++p) {
    t3.add_row({std::string(p == 1 ? "with value-flow + user choice"
                                   : "as historically designed"),
                r3.mean(p, "deploy_fraction"),
                std::string(r3.mean(p, "open_service") != 0 ? "yes" : "no")});
  }
  t3.print(std::cout);

  std::cout << "\nMoral (SVII): protocol design that creates opportunities for\n"
               "competition imposes a direction on evolution.\n";
  return 0;
}
