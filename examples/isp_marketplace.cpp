// Example: the economics tussle end to end (§V-A).
//
// A town with three ISPs. We watch the same market under three addressing
// regimes (the lock-in lever), then let one ISP try value pricing and see
// the game-theoretic response, and finally ask whether anyone would invest
// in QoS here.
#include <iostream>

#include "core/tussle.hpp"

using namespace tussle;

int main() {
  std::cout << "ISP marketplace walkthrough\n===========================\n";

  // --- 1. Lock-in: how addressing policy shapes retail prices ------------
  std::cout << "\n[1] Same town, three addressing regimes (SV-A-1)\n\n";
  econ::LockInModel lockin;
  core::Table t1({"regime", "switching-pain", "mean-price", "who-wins"});
  for (auto mode : {econ::AddressingMode::kStaticProviderAssigned,
                    econ::AddressingMode::kDhcpDynamicDns,
                    econ::AddressingMode::kProviderIndependent}) {
    const double pain = lockin.switching_cost(mode, /*hosts=*/8);
    econ::MarketConfig cfg;
    cfg.switching_cost = pain;
    cfg.periods = 500;
    std::vector<econ::ProviderConfig> isps(3);
    for (std::size_t i = 0; i < isps.size(); ++i) isps[i].name = "isp" + std::to_string(i);
    sim::Rng rng(1);
    econ::Market market(cfg, isps, rng);
    auto r = market.run();
    t1.add_row({to_string(mode), pain, r.mean_price,
                std::string(r.mean_price > 6 ? "providers" : "consumers")});
  }
  t1.print(std::cout);

  // --- 2. Value pricing: one ISP tries a server surcharge ----------------
  std::cout << "\n[2] The value-pricing gambit (SV-A-2)\n\n";
  auto game_low = game::value_pricing_game(1.0, /*competition=*/0.1);
  auto game_high = game::value_pricing_game(1.0, /*competition=*/0.9);
  sim::Rng grng(2);
  auto eq_low = game::learn_equilibrium(game_low, 20000, grng);
  auto eq_high = game::learn_equilibrium(game_high, 20000, grng);
  core::Table t2({"market", "isp-plays-value-pricing", "users-tunnel"});
  t2.add_row({std::string("captive (low competition)"), eq_low.col[1], eq_low.row[1]});
  t2.add_row({std::string("contestable (high competition)"), eq_high.col[1], eq_high.row[1]});
  t2.print(std::cout);

  // --- 3. Would anyone build QoS here? -----------------------------------
  std::cout << "\n[3] The QoS investment question (SVII)\n\n";
  core::Table t3({"design", "deployment", "open-to-new-apps"});
  for (int variant = 0; variant < 2; ++variant) {
    econ::InvestmentConfig cfg;
    cfg.value_flow = (variant == 1);
    cfg.user_choice = (variant == 1);
    sim::Rng rng(3);
    auto r = econ::run_investment(cfg, rng);
    t3.add_row({std::string(variant ? "with value-flow + user choice"
                                    : "as historically designed"),
                r.final_deploy_fraction,
                std::string(r.open_service_available ? "yes" : "no")});
  }
  t3.print(std::cout);

  std::cout << "\nMoral (SVII): protocol design that creates opportunities for\n"
               "competition imposes a direction on evolution.\n";
  return 0;
}
