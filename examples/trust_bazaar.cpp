// Example: the trust tussle (§V-B) — identities, mediated commerce, and a
// trust-aware firewall, composed into one storyline.
//
// Cast: a certified shop, a pseudonymous regular, an anonymous lurker, and
// a scammer. A credit-card-style mediator caps buyer losses; the
// reputation system converts experience into access decisions at a
// trust-aware firewall.
#include <iostream>

#include "core/tussle.hpp"

using namespace tussle;

int main() {
  std::cout << "Trust bazaar walkthrough\n========================\n";

  // Identity substrate: a CA, a registry, and the framework.
  trust::CertificateAuthority ca("bazaar-ca");
  trust::CaRegistry registry;
  registry.trust(&ca);
  registry.enroll(ca.issue("honest-shop"));
  trust::IdentityFramework framework;
  framework.set_verifier(trust::IdentityScheme::kCertified, registry.verifier());

  trust::ReputationSystem reputation;
  econ::Ledger ledger;
  trust::EscrowMediator card("credit-card", ledger, reputation, /*liability_cap=*/0.5);

  // --- Act 1: commerce, mediated vs. not ---------------------------------
  std::cout << "\n[1] Third-party mediation (SV-B): 10 purchases from each shop,\n"
               "    the scam shop never ships.\n\n";
  double mediated_loss = 0, direct_loss = 0;
  for (int i = 0; i < 10; ++i) {
    auto m = card.transact("buyer-" + std::to_string(i), "scam-shop", 20.0, false);
    mediated_loss += m.buyer_loss;
    auto d = trust::EscrowMediator::transact_unmediated(
        ledger, reputation, "buyer-" + std::to_string(i), "scam-shop-direct", 20.0, false);
    direct_loss += d.buyer_loss;
    card.transact("buyer-" + std::to_string(i), "honest-shop", 20.0, true);
  }
  core::Table t1({"channel", "total-buyer-loss", "scam-reputation-now"});
  t1.add_row({std::string("through mediator (capped)"), mediated_loss,
              reputation.score("scam-shop")});
  t1.add_row({std::string("direct two-party"), direct_loss,
              reputation.score("scam-shop-direct")});
  t1.print(std::cout);
  std::cout << "\n  honest shop reputation: " << reputation.score("honest-shop") << "\n";

  // --- Act 2: the firewall consults the bazaar's memory ------------------
  std::cout << "\n[2] Trust-aware firewall (SV-B): who still gets through?\n\n";
  std::map<net::Address, trust::Identity> bindings;
  const net::Address shop_addr{.provider = 1, .subscriber = 1, .host = 1};
  const net::Address scam_addr{.provider = 1, .subscriber = 2, .host = 1};
  const net::Address anon_addr{.provider = 1, .subscriber = 3, .host = 1};
  bindings[shop_addr] = trust::Identity{trust::IdentityScheme::kCertified, "honest-shop",
                                        "bazaar-ca"};
  bindings[scam_addr] =
      trust::Identity{trust::IdentityScheme::kPseudonymous, "scam-shop", ""};
  bindings[anon_addr] = trust::Identity{};  // visibly anonymous

  trust::TrustFirewallConfig cfg;
  cfg.min_reputation = 0.3;
  trust::TrustFirewall fw("bazaar-fw", cfg, framework, reputation,
                          [&](const net::Address& a) -> std::optional<trust::Identity> {
                            auto it = bindings.find(a);
                            if (it == bindings.end()) return std::nullopt;
                            return it->second;
                          });
  auto probe = [&](const net::Address& src, const char* who) {
    net::Packet p;
    p.src = src;
    auto d = fw.decide(p);
    std::cout << "  " << who << ": "
              << (d.action == net::FilterAction::kAccept ? "ACCEPTED" : "refused (" + d.reason + ")")
              << "\n";
  };
  probe(shop_addr, "certified honest shop  ");
  probe(scam_addr, "pseudonymous scam shop ");
  probe(anon_addr, "anonymous lurker       ");

  // --- Act 3: the governance question -------------------------------------
  std::cout << "\n[3] Who sets firewall policy? The paper refuses to decide;\n"
               "    the mechanism only offers the knob:\n\n";
  for (auto authority : {trust::PolicyAuthority::kEndUser, trust::PolicyAuthority::kNetworkAdmin}) {
    trust::TrustFirewallConfig c2;
    c2.authority = authority;
    trust::TrustFirewall fw2("fw2", c2, framework, reputation,
                             [&](const net::Address& a) -> std::optional<trust::Identity> {
                               auto it = bindings.find(a);
                               if (it == bindings.end()) return std::nullopt;
                               return it->second;
                             });
    fw2.user_whitelist("scam-shop");  // the user insists on talking to them
    net::Packet p;
    p.src = scam_addr;
    const bool passed = fw2.decide(p).action == net::FilterAction::kAccept;
    std::cout << "  authority=" << to_string(authority)
              << ", user whitelists the scam shop -> " << (passed ? "honored" : "overridden")
              << "\n";
  }
  std::cout << "\nLedger conservation: " << ledger.total() << " (mediation moved money,\n"
               "never created it).\n";
  return 0;
}
