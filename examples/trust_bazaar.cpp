// Example: the trust tussle (§V-B) — identities, mediated commerce, and a
// trust-aware firewall, composed into one storyline.
//
// Cast: a certified shop, a pseudonymous regular, an anonymous lurker, and
// a scammer. A credit-card-style mediator caps buyer losses; the
// reputation system converts experience into access decisions at a
// trust-aware firewall.
//
// The storyline is declared once as a core::ScenarioSpec whose single axis
// is the governance question of act 3 — who holds firewall policy
// authority. Each run rebuilds the bazaar from scratch and records its
// observations as metrics and notes; the narration below replays them.
#include <iostream>

#include "core/tussle.hpp"

using namespace tussle;

int main() {
  std::cout << "Trust bazaar walkthrough\n========================\n";

  constexpr trust::PolicyAuthority kAuthorities[] = {
      trust::PolicyAuthority::kEndUser,
      trust::PolicyAuthority::kNetworkAdmin,
  };

  core::ScenarioSpec spec;
  spec.name = "trust-bazaar";
  spec.description = "mediated commerce + trust firewall under two policy authorities";
  spec.grid.axis("authority", {0, 1});
  spec.body = [&](core::RunContext& ctx) {
    // Identity substrate: a CA, a registry, and the framework.
    trust::CertificateAuthority ca("bazaar-ca");
    trust::CaRegistry registry;
    registry.trust(&ca);
    registry.enroll(ca.issue("honest-shop"));
    trust::IdentityFramework framework;
    framework.set_verifier(trust::IdentityScheme::kCertified, registry.verifier());

    trust::ReputationSystem reputation;
    econ::Ledger ledger;
    trust::EscrowMediator card("credit-card", ledger, reputation, /*liability_cap=*/0.5);

    // Act 1: commerce, mediated vs. not — 10 purchases from each shop, the
    // scam shop never ships.
    double mediated_loss = 0, direct_loss = 0;
    for (int i = 0; i < 10; ++i) {
      auto m = card.transact("buyer-" + std::to_string(i), "scam-shop", 20.0, false);
      mediated_loss += m.buyer_loss;
      auto d = trust::EscrowMediator::transact_unmediated(
          ledger, reputation, "buyer-" + std::to_string(i), "scam-shop-direct", 20.0, false);
      direct_loss += d.buyer_loss;
      card.transact("buyer-" + std::to_string(i), "honest-shop", 20.0, true);
    }
    ctx.put("mediated_loss", mediated_loss);
    ctx.put("direct_loss", direct_loss);
    ctx.put("scam_reputation", reputation.score("scam-shop"));
    ctx.put("scam_direct_reputation", reputation.score("scam-shop-direct"));
    ctx.put("honest_reputation", reputation.score("honest-shop"));

    // Act 2: the firewall consults the bazaar's memory.
    std::map<net::Address, trust::Identity> bindings;
    const net::Address shop_addr{.provider = 1, .subscriber = 1, .host = 1};
    const net::Address scam_addr{.provider = 1, .subscriber = 2, .host = 1};
    const net::Address anon_addr{.provider = 1, .subscriber = 3, .host = 1};
    bindings[shop_addr] = trust::Identity{trust::IdentityScheme::kCertified, "honest-shop",
                                          "bazaar-ca"};
    bindings[scam_addr] =
        trust::Identity{trust::IdentityScheme::kPseudonymous, "scam-shop", ""};
    bindings[anon_addr] = trust::Identity{};  // visibly anonymous
    auto lookup = [&](const net::Address& a) -> std::optional<trust::Identity> {
      auto it = bindings.find(a);
      if (it == bindings.end()) return std::nullopt;
      return it->second;
    };

    trust::TrustFirewallConfig cfg;
    cfg.min_reputation = 0.3;
    trust::TrustFirewall fw("bazaar-fw", cfg, framework, reputation, lookup);
    auto probe = [&](const net::Address& src, const char* who) {
      net::Packet p;
      p.src = src;
      auto d = fw.decide(p);
      ctx.note("  " + std::string(who) + ": " +
               (d.action == net::FilterAction::kAccept ? "ACCEPTED"
                                                       : "refused (" + d.reason + ")"));
    };
    probe(shop_addr, "certified honest shop  ");
    probe(scam_addr, "pseudonymous scam shop ");
    probe(anon_addr, "anonymous lurker       ");

    // Act 3: the governance knob. The user insists on talking to the scam
    // shop; whether the whitelist sticks depends on who holds authority.
    trust::TrustFirewallConfig c2;
    c2.authority = kAuthorities[static_cast<std::size_t>(ctx.param("authority"))];
    trust::TrustFirewall fw2("fw2", c2, framework, reputation, lookup);
    fw2.user_whitelist("scam-shop");
    net::Packet p;
    p.src = scam_addr;
    ctx.put("whitelist_honored",
            fw2.decide(p).action == net::FilterAction::kAccept ? 1.0 : 0.0);
    ctx.put("ledger_total", ledger.total());
  };

  const auto res = core::run_sweep(spec);

  // --- Act 1: commerce, mediated vs. not ---------------------------------
  std::cout << "\n[1] Third-party mediation (SV-B): 10 purchases from each shop,\n"
               "    the scam shop never ships.\n\n";
  core::Table t1({"channel", "total-buyer-loss", "scam-reputation-now"});
  t1.add_row({std::string("through mediator (capped)"), res.mean(0, "mediated_loss"),
              res.mean(0, "scam_reputation")});
  t1.add_row({std::string("direct two-party"), res.mean(0, "direct_loss"),
              res.mean(0, "scam_direct_reputation")});
  t1.print(std::cout);
  std::cout << "\n  honest shop reputation: " << res.mean(0, "honest_reputation") << "\n";

  // --- Act 2: the firewall consults the bazaar's memory ------------------
  std::cout << "\n[2] Trust-aware firewall (SV-B): who still gets through?\n\n";
  for (const auto& line : res.run(0, 0).notes) std::cout << line << "\n";

  // --- Act 3: the governance question -------------------------------------
  std::cout << "\n[3] Who sets firewall policy? The paper refuses to decide;\n"
               "    the mechanism only offers the knob:\n\n";
  for (std::size_t p = 0; p < res.points.size(); ++p) {
    const bool passed = res.mean(p, "whitelist_honored") != 0;
    std::cout << "  authority=" << to_string(kAuthorities[p])
              << ", user whitelists the scam shop -> " << (passed ? "honored" : "overridden")
              << "\n";
  }
  std::cout << "\nLedger conservation: " << res.mean(0, "ledger_total")
            << " (mediation moved money,\nnever created it).\n";
  return 0;
}
