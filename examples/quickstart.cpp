// Quickstart: build a small network, install routes, run traffic, and put
// one tussle on the wire — an ISP filter vs. a user who encrypts.
//
//   $ ./quickstart
//
// Walks through the three layers a tussle-net program touches:
//   1. substrate  — Simulator + Network + routing
//   2. mechanism  — a policy-language filter installed at a provider node
//   3. tussle     — the user's counter-move, and what the metrics show
//
// The experiment itself is declared as a core::ScenarioSpec — the same
// declarative surface every bench uses — with "does alice encrypt?" as the
// one parameter axis. run_sweep() evaluates both points (in parallel when
// TUSSLE_JOBS allows, bit-identically either way) and the narrative below
// replays each run's notes in run-index order.
#include <iostream>

#include "core/tussle.hpp"

using namespace tussle;

int main() {
  std::cout << "tussle-net quickstart\n=====================\n\n";

  core::ScenarioSpec spec;
  spec.name = "quickstart";
  spec.description = "ISP p2p filter vs an encrypting user";
  spec.grid.axis("encrypted", {0, 1});
  spec.body = [](core::RunContext& ctx) {
    // 1. Substrate: a deterministic simulator and a 3-node network
    //    alice --- isp-router --- bob
    sim::Simulator sim(ctx.rng().next_u64());
    net::Network net(sim);
    const net::NodeId alice = net.add_node(/*as=*/1);
    const net::NodeId isp = net.add_node(1);
    const net::NodeId bob = net.add_node(1);
    net.connect(alice, isp, 10e6, sim::Duration::millis(5));
    net.connect(isp, bob, 10e6, sim::Duration::millis(5));

    const net::Address alice_addr{.provider = 1, .subscriber = 1, .host = 1};
    const net::Address bob_addr{.provider = 1, .subscriber = 2, .host = 1};
    net.node(alice).add_address(alice_addr);
    net.node(bob).add_address(bob_addr);

    // Let link-state routing fill every forwarding table.
    routing::LinkState ls(net);
    ls.install_routes({alice, isp, bob});

    // 2. Mechanism: the ISP installs a policy-language filter: no p2p.
    policy::PolicySet rules(policy::standard_packet_ontology(), policy::Effect::kPermit);
    rules.add("no-p2p", policy::Effect::kDeny, "proto == 'p2p'", "application");
    net.node(isp).add_filter(policy::make_packet_filter("isp-dpi", /*disclosed=*/true, rules));

    // 3. Tussle: alice sends p2p, plainly or encrypted depending on the axis.
    const bool encrypted = ctx.param("encrypted") != 0;
    net::Packet p;
    p.src = alice_addr;
    p.dst = bob_addr;
    p.proto = net::AppProto::kP2p;
    p.encrypted = encrypted;
    p.payload_tag = encrypted ? "hidden" : "plain";
    net.node(bob).set_local_handler([&](const net::Packet& got) {
      ctx.note("  bob received: " + got.payload_tag + " (observable proto: " +
               std::string(net::to_string(got.observable_proto())) + ")");
    });
    net.node(alice).originate(std::move(p));
    ctx.add_events(sim.run());

    ctx.put("delivered", static_cast<double>(net.counters().delivered.value()));
    ctx.put("filtered", static_cast<double>(net.counters().dropped_filter.value()));
    for (const auto& name : net.node(isp).disclosed_filter_names()) {
      ctx.note("  disclosed control point at the ISP: " + name);
    }
  };

  const auto res = core::run_sweep(spec);

  std::cout << "Round 1: plain p2p through the ISP filter...\n";
  for (const auto& line : res.run(0, 0).notes) std::cout << line << "\n";
  std::cout << "  delivered=" << res.mean(0, "delivered")
            << " filtered=" << res.mean(0, "filtered") << "\n\n";

  std::cout << "Round 2: alice encrypts (SVI-A: 'peeking is irresistible', so\n"
            << "the ultimate defense of the end-to-end mode is encryption)...\n";
  for (const auto& line : res.run(1, 0).notes) std::cout << line << "\n";
  std::cout << "  delivered=" << res.mean(1, "delivered")
            << " filtered=" << res.mean(1, "filtered") << "\n\n";

  // The visibility principle: the filter disclosed itself (see the notes
  // above), so alice could know why round 1 failed.
  const double bob_got = res.mean(0, "delivered") + res.mean(1, "delivered");
  std::cout << "Done. Bob received " << bob_got << " of 2 packets — the tussle\n"
            << "played out *inside* the design: no protocol was violated.\n";
  return 0;
}
