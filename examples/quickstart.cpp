// Quickstart: build a small network, install routes, run traffic, and put
// one tussle on the wire — an ISP filter vs. a user who encrypts.
//
//   $ ./quickstart
//
// Walks through the three layers a tussle-net program touches:
//   1. substrate  — Simulator + Network + routing
//   2. mechanism  — a policy-language filter installed at a provider node
//   3. tussle     — the user's counter-move, and what the metrics show
#include <iostream>

#include "core/tussle.hpp"

using namespace tussle;

int main() {
  std::cout << "tussle-net quickstart\n=====================\n\n";

  // 1. Substrate: a deterministic simulator and a 3-node network
  //    alice --- isp-router --- bob
  sim::Simulator sim(/*seed=*/42);
  net::Network net(sim);
  const net::NodeId alice = net.add_node(/*as=*/1);
  const net::NodeId isp = net.add_node(1);
  const net::NodeId bob = net.add_node(1);
  net.connect(alice, isp, 10e6, sim::Duration::millis(5));
  net.connect(isp, bob, 10e6, sim::Duration::millis(5));

  const net::Address alice_addr{.provider = 1, .subscriber = 1, .host = 1};
  const net::Address bob_addr{.provider = 1, .subscriber = 2, .host = 1};
  net.node(alice).add_address(alice_addr);
  net.node(bob).add_address(bob_addr);

  // Let link-state routing fill every forwarding table.
  routing::LinkState ls(net);
  ls.install_routes({alice, isp, bob});

  // 2. Mechanism: the ISP installs a policy-language filter: no p2p.
  policy::PolicySet rules(policy::standard_packet_ontology(), policy::Effect::kPermit);
  rules.add("no-p2p", policy::Effect::kDeny, "proto == 'p2p'", "application");
  net.node(isp).add_filter(policy::make_packet_filter("isp-dpi", /*disclosed=*/true, rules));

  // 3. Tussle: alice sends p2p plainly, then encrypted.
  auto send = [&](bool encrypted) {
    net::Packet p;
    p.src = alice_addr;
    p.dst = bob_addr;
    p.proto = net::AppProto::kP2p;
    p.encrypted = encrypted;
    p.payload_tag = encrypted ? "hidden" : "plain";
    net.node(alice).originate(std::move(p));
  };
  int bob_got = 0;
  net.node(bob).set_local_handler([&](const net::Packet& p) {
    std::cout << "  bob received: " << p.payload_tag
              << " (observable proto: " << net::to_string(p.observable_proto()) << ")\n";
    ++bob_got;
  });

  std::cout << "Round 1: plain p2p through the ISP filter...\n";
  send(/*encrypted=*/false);
  sim.run();
  std::cout << "  delivered=" << net.counters().delivered.value()
            << " filtered=" << net.counters().dropped_filter.value() << "\n\n";

  std::cout << "Round 2: alice encrypts (SVI-A: 'peeking is irresistible', so\n"
            << "the ultimate defense of the end-to-end mode is encryption)...\n";
  send(/*encrypted=*/true);
  sim.run();
  std::cout << "  delivered=" << net.counters().delivered.value()
            << " filtered=" << net.counters().dropped_filter.value() << "\n\n";

  // The visibility principle: the filter disclosed itself, so alice could
  // know why round 1 failed.
  std::cout << "Disclosed control points at the ISP:";
  for (const auto& name : net.node(isp).disclosed_filter_names()) std::cout << " " << name;
  std::cout << "\n\nDone. Bob received " << bob_got << " of 2 packets — the tussle\n"
            << "played out *inside* the design: no protocol was violated.\n";
  return 0;
}
