#include <gtest/gtest.h>

#include "trust/certificates.hpp"
#include "trust/identity.hpp"

namespace tussle::trust {
namespace {

TEST(Identity, AnonymityIsVisible) {
  Identity anon;
  EXPECT_TRUE(anon.visibly_anonymous());
  Identity named{IdentityScheme::kPseudonymous, "kilroy", ""};
  EXPECT_FALSE(named.visibly_anonymous());
}

TEST(IdentityFramework, AnonymousVerifiesToNothing) {
  IdentityFramework f;
  auto v = f.verify(Identity{});
  EXPECT_FALSE(v.verified);
  EXPECT_FALSE(v.accountable);
  EXPECT_FALSE(v.linkable);
}

TEST(IdentityFramework, PseudonymIsLinkableNotAccountable) {
  IdentityFramework f;
  auto v = f.verify(Identity{IdentityScheme::kPseudonymous, "kilroy", ""});
  EXPECT_TRUE(v.verified);
  EXPECT_TRUE(v.linkable);
  EXPECT_FALSE(v.accountable);
}

TEST(IdentityFramework, SelfAssertedIsUnverified) {
  IdentityFramework f;
  auto v = f.verify(Identity{IdentityScheme::kSelfAsserted, "bob", ""});
  EXPECT_FALSE(v.verified);
  EXPECT_TRUE(v.linkable);
}

TEST(IdentityFramework, CertifiedFailsClosedWithoutCa) {
  IdentityFramework f;
  auto v = f.verify(Identity{IdentityScheme::kCertified, "alice", "root-ca"});
  EXPECT_FALSE(v.verified);
}

TEST(Certificates, IssueAndCheck) {
  CertificateAuthority ca("root-ca");
  auto cert = ca.issue("alice");
  EXPECT_TRUE(ca.check(cert));
  EXPECT_EQ(cert.issuer, "root-ca");
  EXPECT_EQ(ca.issued_count(), 1u);
}

TEST(Certificates, ForgeryDetected) {
  CertificateAuthority ca("root-ca");
  auto cert = ca.issue("alice");
  Certificate forged = cert;
  forged.subject = "mallory";
  forged.signature ^= 1;  // tampered token
  EXPECT_FALSE(ca.check(forged));
  Certificate fabricated{.subject = "mallory", .issuer = "root-ca", .serial = 99,
                         .signature = 1234};
  EXPECT_FALSE(ca.check(fabricated));
}

TEST(Certificates, RevocationStops) {
  CertificateAuthority ca("root-ca");
  auto cert = ca.issue("alice");
  ca.revoke(cert.serial);
  EXPECT_FALSE(ca.check(cert));
  EXPECT_TRUE(ca.is_revoked(cert.serial));
}

TEST(Certificates, WrongIssuerRejected) {
  CertificateAuthority a("ca-a"), b("ca-b");
  auto cert = a.issue("alice");
  EXPECT_FALSE(b.check(cert));
}

TEST(CaRegistry, ValidatesThroughTrustedCas) {
  CertificateAuthority a("ca-a"), b("ca-b");
  CaRegistry reg;
  reg.trust(&a);
  auto cert_a = a.issue("alice");
  auto cert_b = b.issue("bob");
  EXPECT_TRUE(reg.validate(cert_a));
  EXPECT_FALSE(reg.validate(cert_b));  // issuer not trusted
}

TEST(CaRegistry, VerifierIntegratesWithFramework) {
  CertificateAuthority ca("root-ca");
  CaRegistry reg;
  reg.trust(&ca);
  auto cert = ca.issue("alice");
  reg.enroll(cert);

  IdentityFramework f;
  f.set_verifier(IdentityScheme::kCertified, reg.verifier());
  auto v = f.verify(Identity{IdentityScheme::kCertified, "alice", "root-ca"});
  EXPECT_TRUE(v.verified);
  EXPECT_TRUE(v.accountable);
  EXPECT_TRUE(v.linkable);

  // Claiming certification without enrollment fails.
  auto v2 = f.verify(Identity{IdentityScheme::kCertified, "mallory", "root-ca"});
  EXPECT_FALSE(v2.verified);
}

TEST(CaRegistry, RoleIdentityVerifiedButNotAccountable) {
  CertificateAuthority ca("root-ca");
  CaRegistry reg;
  reg.trust(&ca);
  auto cert = ca.issue("doctor");
  reg.enroll(cert);
  IdentityFramework f;
  f.set_verifier(IdentityScheme::kRole, reg.verifier());
  auto v = f.verify(Identity{IdentityScheme::kRole, "doctor", "root-ca"});
  EXPECT_TRUE(v.verified);
  EXPECT_FALSE(v.accountable);
}

TEST(CaRegistry, RevokedCertificateFailsIdentityCheck) {
  CertificateAuthority ca("root-ca");
  CaRegistry reg;
  reg.trust(&ca);
  auto cert = ca.issue("alice");
  reg.enroll(cert);
  ca.revoke(cert.serial);
  IdentityFramework f;
  f.set_verifier(IdentityScheme::kCertified, reg.verifier());
  EXPECT_FALSE(f.verify(Identity{IdentityScheme::kCertified, "alice", "root-ca"}).verified);
}

TEST(SchemeNames, AllCovered) {
  EXPECT_EQ(to_string(IdentityScheme::kAnonymous), "anonymous");
  EXPECT_EQ(to_string(IdentityScheme::kPseudonymous), "pseudonymous");
  EXPECT_EQ(to_string(IdentityScheme::kSelfAsserted), "self-asserted");
  EXPECT_EQ(to_string(IdentityScheme::kCertified), "certified");
  EXPECT_EQ(to_string(IdentityScheme::kRole), "role");
}

}  // namespace
}  // namespace tussle::trust
