#include "routing/multicast.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace tussle::routing {
namespace {

using net::NodeId;

TEST(SpfPath, ExtractsPathsOnLine) {
  sim::Simulator sim;
  net::Network net(sim);
  auto ids = net::build_line(net, 5, 1, net::LinkSpec{});
  LinkState ls(net, [](const net::Link&) { return 1.0; });
  auto tree = ls.spf(ids[0]);
  auto path = spf_path(tree, ids[0], ids[4]);
  EXPECT_EQ(path, ids);
  EXPECT_EQ(spf_path(tree, ids[0], ids[0]), (std::vector<NodeId>{ids[0]}));
}

TEST(SpfPath, UnreachableIsEmpty) {
  sim::Simulator sim;
  net::Network net(sim);
  auto ids = net::build_line(net, 3, 1, net::LinkSpec{});
  NodeId island = net.add_node(1);
  LinkState ls(net);
  auto tree = ls.spf(ids[0]);
  EXPECT_TRUE(spf_path(tree, ids[0], island).empty());
}

TEST(Multicast, StarTopologyCosts) {
  // Hub + 5 leaves; source = leaf 0, members = leaves 1..4.
  sim::Simulator sim;
  net::Network net(sim);
  auto ids = net::build_star(net, 5, 1, net::LinkSpec{});
  std::vector<NodeId> members(ids.begin() + 2, ids.end());  // 4 members
  auto cost = compare_distribution(net, ids[1], members, {});
  // Unicast: each member path = leaf->hub->leaf = 2 links; 4 members = 8.
  EXPECT_EQ(cost.unicast, 8u);
  // Multicast: source uplink (1) + 4 member downlinks = 5 distinct edges.
  EXPECT_EQ(cost.multicast, 5u);
  EXPECT_NEAR(cost.multicast_savings(), 1.0 - 5.0 / 8.0, 1e-12);
  // No caches: cdn falls back to unicast.
  EXPECT_EQ(cost.cdn, cost.unicast);
}

TEST(Multicast, SavingsGrowWithGroupSize) {
  sim::Simulator sim;
  net::Network net(sim);
  auto ids = net::build_star(net, 20, 1, net::LinkSpec{});
  auto cost_for = [&](std::size_t n) {
    std::vector<NodeId> members(ids.begin() + 2, ids.begin() + 2 + n);
    return compare_distribution(net, ids[1], members, {});
  };
  EXPECT_GT(cost_for(16).multicast_savings(), cost_for(4).multicast_savings());
}

TEST(Multicast, CdnCheaperThanUnicastWithRemoteMembers) {
  // Two hubs far apart: source on hub A, members on hub B, cache on hub B.
  sim::Simulator sim;
  net::Network net(sim);
  NodeId a = net.add_node(1), b = net.add_node(1);
  // Long path between hubs (3 intermediate routers).
  NodeId r1 = net.add_node(1), r2 = net.add_node(1), r3 = net.add_node(1);
  net::LinkSpec spec;
  net.connect(a, r1, 1e9, sim::Duration::millis(1));
  net.connect(r1, r2, 1e9, sim::Duration::millis(1));
  net.connect(r2, r3, 1e9, sim::Duration::millis(1));
  net.connect(r3, b, 1e9, sim::Duration::millis(1));
  NodeId src = net.add_node(1);
  net.connect(src, a, 1e9, sim::Duration::millis(1));
  std::vector<NodeId> members;
  for (int i = 0; i < 6; ++i) {
    NodeId m = net.add_node(1);
    net.connect(b, m, 1e9, sim::Duration::millis(1));
    members.push_back(m);
  }
  auto cost = compare_distribution(net, src, members, {b});
  // Unicast: 6 × (src-a-r1-r2-r3-b-m = 6 links) = 36.
  EXPECT_EQ(cost.unicast, 36u);
  // CDN: fill b once (5 links) + 6 local hops = 11.
  EXPECT_EQ(cost.cdn, 11u);
  // Multicast tree: 5 shared + 6 leaf links = 11 — CDN ties multicast here.
  EXPECT_EQ(cost.multicast, 11u);
  EXPECT_GT(cost.cdn_savings(), 0.5);
}

TEST(Multicast, UnreachableMembersIgnored) {
  sim::Simulator sim;
  net::Network net(sim);
  auto ids = net::build_star(net, 3, 1, net::LinkSpec{});
  NodeId island = net.add_node(1);
  auto cost = compare_distribution(net, ids[1], {ids[2], island}, {});
  EXPECT_EQ(cost.unicast, 2u);  // only the reachable member counted
}

}  // namespace
}  // namespace tussle::routing
