#include "net/address.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace tussle::net {
namespace {

TEST(Address, DefaultIsInvalid) {
  Address a;
  EXPECT_FALSE(a.valid());
}

TEST(Address, ProviderAssignedIsValid) {
  Address a{.provider = 7, .subscriber = 1, .host = 2};
  EXPECT_TRUE(a.valid());
}

TEST(Address, PortableWithoutProviderIsValid) {
  Address a{.provider = kNoAs, .subscriber = 9, .host = 1, .portable = true};
  EXPECT_TRUE(a.valid());
}

TEST(Address, EqualityIncludesPortability) {
  Address a{.provider = 1, .subscriber = 2, .host = 3};
  Address b = a;
  EXPECT_EQ(a, b);
  b.portable = true;
  EXPECT_NE(a, b);
}

TEST(Address, PrefixDropsHost) {
  Address a{.provider = 4, .subscriber = 5, .host = 6};
  Address b{.provider = 4, .subscriber = 5, .host = 99};
  EXPECT_EQ(prefix_of(a), prefix_of(b));
  Address c{.provider = 4, .subscriber = 7, .host = 6};
  EXPECT_NE(prefix_of(a), prefix_of(c));
}

TEST(Address, HashUsableInSets) {
  std::unordered_set<Address> set;
  for (std::uint32_t p = 1; p <= 10; ++p)
    for (std::uint32_t h = 0; h < 10; ++h)
      set.insert(Address{.provider = p, .subscriber = 0, .host = h});
  EXPECT_EQ(set.size(), 100u);
  EXPECT_TRUE(set.contains(Address{.provider = 3, .subscriber = 0, .host = 4}));
}

TEST(Prefix, HashDistinguishesPortability) {
  std::unordered_set<Prefix> set;
  set.insert(Prefix{1, 2, false});
  set.insert(Prefix{1, 2, true});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Address, ToStringMarksPortable) {
  Address a{.provider = 1, .subscriber = 2, .host = 3, .portable = true};
  EXPECT_EQ(a.to_string().substr(0, 3), "pi:");
  a.portable = false;
  EXPECT_EQ(a.to_string(), "1.2.3");
}

}  // namespace
}  // namespace tussle::net
