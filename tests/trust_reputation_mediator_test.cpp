#include <gtest/gtest.h>

#include "trust/mediator.hpp"
#include "trust/reputation.hpp"

namespace tussle::trust {
namespace {

TEST(Reputation, UnknownStartsAtHalf) {
  ReputationSystem r;
  EXPECT_DOUBLE_EQ(r.score("stranger"), 0.5);
  EXPECT_EQ(r.report_count("stranger"), 0u);
}

TEST(Reputation, PositiveReportsRaiseScore) {
  ReputationSystem r;
  for (int i = 0; i < 8; ++i) r.record("rater", "shop", true);
  EXPECT_NEAR(r.score("shop"), 9.0 / 10.0, 1e-12);
  EXPECT_EQ(r.report_count("shop"), 8u);
}

TEST(Reputation, MixedReports) {
  ReputationSystem r;
  r.record("a", "shop", true);
  r.record("b", "shop", false);
  EXPECT_DOUBLE_EQ(r.score("shop"), 0.5);  // (1+1)/(2+2)
}

TEST(Reputation, SingleReportMovesNeedleModestly) {
  ReputationSystem r;
  r.record("a", "shop", false);
  EXPECT_NEAR(r.score("shop"), 1.0 / 3.0, 1e-12);  // not zero — beta prior
}

TEST(Reputation, OutlierRatersDetected) {
  ReputationSystem r;
  // Consensus: "shop" is good (9 honest raters), "scam" is bad.
  for (int i = 0; i < 9; ++i) {
    r.record("honest" + std::to_string(i), "shop", true);
    r.record("honest" + std::to_string(i), "scam", false);
  }
  // The shill praises the scam and slanders the shop, repeatedly.
  for (int i = 0; i < 5; ++i) {
    r.record("shill", "scam", true);
    r.record("shill", "shop", false);
  }
  auto outliers = r.outlier_raters(0.6, 3);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0], "shill");
}

TEST(Mediator, HonestSaleSettlesThroughEscrow) {
  econ::Ledger ledger;
  ReputationSystem rep;
  EscrowMediator visa("visa", ledger, rep, 0.5, 0.03);
  auto out = visa.transact("buyer", "shop", 100.0, /*seller_honest=*/true);
  EXPECT_TRUE(out.completed);
  EXPECT_DOUBLE_EQ(out.seller_revenue, 97.0);
  EXPECT_DOUBLE_EQ(out.mediator_fee_collected, 3.0);
  EXPECT_DOUBLE_EQ(ledger.balance("shop"), 97.0);
  EXPECT_DOUBLE_EQ(ledger.balance("visa"), 3.0);
  EXPECT_GT(rep.score("shop"), 0.5);
}

TEST(Mediator, FraudCapsBuyerLoss) {
  econ::Ledger ledger;
  ReputationSystem rep;
  EscrowMediator visa("visa", ledger, rep, 0.5, 0.03);
  auto out = visa.transact("buyer", "scam", 100.0, /*seller_honest=*/false);
  EXPECT_FALSE(out.completed);
  EXPECT_DOUBLE_EQ(out.buyer_loss, 0.5);  // the "$50" cap
  EXPECT_DOUBLE_EQ(out.seller_revenue, 0.0);
  EXPECT_DOUBLE_EQ(ledger.balance("scam"), 0.0);
  EXPECT_DOUBLE_EQ(ledger.balance("buyer"), -0.5);
  EXPECT_LT(rep.score("scam"), 0.5);
}

TEST(Mediator, UnmediatedFraudLosesEverything) {
  econ::Ledger ledger;
  ReputationSystem rep;
  auto out = EscrowMediator::transact_unmediated(ledger, rep, "buyer", "scam", 100.0, false);
  EXPECT_FALSE(out.completed);
  EXPECT_DOUBLE_EQ(out.buyer_loss, 100.0);
  EXPECT_DOUBLE_EQ(ledger.balance("scam"), 100.0);  // the scammer keeps it
}

TEST(Mediator, MediationBoundsLossRatioUnderFraudMix) {
  // Property: across any fraud rate, mediated buyers lose at most
  // cap per bad transaction; unmediated buyers lose the full price.
  econ::Ledger l1, l2;
  ReputationSystem r1, r2;
  EscrowMediator visa("visa", l1, r1, 0.5, 0.03);
  double mediated_loss = 0, unmediated_loss = 0;
  for (int i = 0; i < 20; ++i) {
    const bool honest = (i % 4 != 0);  // 25% fraud
    const auto m = visa.transact("buyer", "s" + std::to_string(i), 10.0, honest);
    if (!m.completed) mediated_loss += m.buyer_loss;
    const auto u = EscrowMediator::transact_unmediated(l2, r2, "buyer",
                                                       "s" + std::to_string(i), 10.0, honest);
    if (!u.completed) unmediated_loss += u.buyer_loss;
  }
  EXPECT_DOUBLE_EQ(mediated_loss, 5 * 0.5);
  EXPECT_DOUBLE_EQ(unmediated_loss, 5 * 10.0);
  EXPECT_NEAR(l1.total(), 0.0, 1e-9);  // value conserved through escrow
}

}  // namespace
}  // namespace tussle::trust
