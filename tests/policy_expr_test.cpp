#include "policy/expr.hpp"

#include <gtest/gtest.h>

namespace tussle::policy {
namespace {

Ontology onto() {
  Ontology o;
  o.declare("proto", ValueType::kString);
  o.declare("size", ValueType::kNumber);
  o.declare("encrypted", ValueType::kBool);
  o.declare("src_as", ValueType::kNumber);
  return o;
}

Context ctx() {
  Context c;
  c.set("proto", "web");
  c.set("size", 1200.0);
  c.set("encrypted", false);
  c.set("src_as", 7.0);
  return c;
}

TEST(Expr, LiteralBool) {
  EXPECT_TRUE(Expr::compile("true", onto()).test(ctx()));
  EXPECT_FALSE(Expr::compile("false", onto()).test(ctx()));
}

TEST(Expr, StringEquality) {
  EXPECT_TRUE(Expr::compile("proto == \"web\"", onto()).test(ctx()));
  EXPECT_FALSE(Expr::compile("proto == 'mail'", onto()).test(ctx()));
  EXPECT_TRUE(Expr::compile("proto != 'mail'", onto()).test(ctx()));
}

TEST(Expr, NumericComparisons) {
  auto o = onto();
  auto c = ctx();
  EXPECT_TRUE(Expr::compile("size > 1000", o).test(c));
  EXPECT_TRUE(Expr::compile("size >= 1200", o).test(c));
  EXPECT_FALSE(Expr::compile("size < 1200", o).test(c));
  EXPECT_TRUE(Expr::compile("size <= 1200", o).test(c));
}

TEST(Expr, Arithmetic) {
  auto o = onto();
  auto c = ctx();
  EXPECT_TRUE(Expr::compile("size * 2 == 2400", o).test(c));
  EXPECT_TRUE(Expr::compile("size / 4 == 300", o).test(c));
  EXPECT_TRUE(Expr::compile("size + 100 - 50 == 1250", o).test(c));
  EXPECT_TRUE(Expr::compile("size - 200 * 2 == 800", o).test(c));  // precedence
}

TEST(Expr, BooleanConnectives) {
  auto o = onto();
  auto c = ctx();
  EXPECT_TRUE(Expr::compile("proto == 'web' and size > 1000", o).test(c));
  EXPECT_TRUE(Expr::compile("proto == 'mail' or size > 1000", o).test(c));
  EXPECT_FALSE(Expr::compile("not (size > 1000)", o).test(c));
  EXPECT_TRUE(Expr::compile("not encrypted", o).test(c));
}

TEST(Expr, PrecedenceAndBeforeOr) {
  auto o = onto();
  auto c = ctx();
  // false and false or true  ==  (false and false) or true  ==  true
  EXPECT_TRUE(Expr::compile("encrypted and encrypted or true", o).test(c));
}

TEST(Expr, InList) {
  auto o = onto();
  auto c = ctx();
  EXPECT_TRUE(Expr::compile("src_as in [3, 7, 9]", o).test(c));
  EXPECT_FALSE(Expr::compile("src_as in [3, 9]", o).test(c));
  EXPECT_TRUE(Expr::compile("proto in ['web', 'mail']", o).test(c));
}

TEST(Expr, UndeclaredAttributeIsOntologyError) {
  // The bounding function of a policy language: "port_number" is simply not
  // sayable in this ontology.
  EXPECT_THROW(Expr::compile("port_number == 80", onto()), OntologyError);
}

TEST(Expr, TypeMismatchRejectedAtCompileTime) {
  EXPECT_THROW(Expr::compile("proto == 7", onto()), TypeError);
  EXPECT_THROW(Expr::compile("size and encrypted", onto()), TypeError);
  EXPECT_THROW(Expr::compile("not size", onto()), TypeError);
  EXPECT_THROW(Expr::compile("encrypted < true", onto()), TypeError);
  EXPECT_THROW(Expr::compile("proto + 'x' == 'webx'", onto()), TypeError);
  EXPECT_THROW(Expr::compile("size in ['web']", onto()), TypeError);
}

TEST(Expr, ParseErrors) {
  EXPECT_THROW(Expr::compile("size >", onto()), ParseError);
  EXPECT_THROW(Expr::compile("(size > 1", onto()), ParseError);
  EXPECT_THROW(Expr::compile("size > 1 extra", onto()), ParseError);
  EXPECT_THROW(Expr::compile("'unterminated", onto()), ParseError);
  EXPECT_THROW(Expr::compile("size @ 3", onto()), ParseError);
  EXPECT_THROW(Expr::compile("src_as in []", onto()), ParseError);
}

TEST(Expr, DivisionByZeroAtEvalTime) {
  auto e = Expr::compile("size / (size - 1200) > 1", onto());
  EXPECT_THROW(e.test(ctx()), TypeError);
}

TEST(Expr, MissingAttributeAtEvalTime) {
  auto e = Expr::compile("size > 0", onto());
  Context empty;
  EXPECT_THROW(e.test(empty), OntologyError);
}

TEST(Expr, ShortCircuitSkipsMissingAttribute) {
  // 'and' must not evaluate its right side when the left is false.
  auto e = Expr::compile("encrypted and size > 0", onto());
  Context c;
  c.set("encrypted", false);  // size unbound
  EXPECT_FALSE(e.test(c));
  auto e2 = Expr::compile("not encrypted or size > 0", onto());
  EXPECT_TRUE(e2.test(c));
}

TEST(Expr, ReferencedAttributesSortedUnique) {
  auto e = Expr::compile("size > 0 and proto == 'web' and size < 9000", onto());
  auto attrs = e.referenced_attributes();
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0], "proto");
  EXPECT_EQ(attrs[1], "size");
}

TEST(Expr, ResultTypeReported) {
  EXPECT_EQ(Expr::compile("size + 1", onto()).result_type(), ValueType::kNumber);
  EXPECT_EQ(Expr::compile("size > 1", onto()).result_type(), ValueType::kBool);
  EXPECT_THROW(Expr::compile("size + 1", onto()).test(ctx()), TypeError);
}

TEST(Expr, NumericEval) {
  auto e = Expr::compile("size * 2 + 10", onto());
  EXPECT_DOUBLE_EQ(std::get<double>(e.eval(ctx())), 2410.0);
}

TEST(Expr, StringOrdering) {
  auto o = onto();
  auto c = ctx();
  EXPECT_TRUE(Expr::compile("proto >= 'voip'", o).test(c));  // "web" > "voip"
  EXPECT_FALSE(Expr::compile("proto < 'aaa'", o).test(c));
}

TEST(Expr, SourcePreserved) {
  const std::string src = "size > 100";
  EXPECT_EQ(Expr::compile(src, onto()).source(), src);
}

// Parameterized truth-table sweep for the connectives.
class ConnectiveTruth : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(ConnectiveTruth, AndOrNotMatchCpp) {
  auto [a, b] = GetParam();
  Ontology o;
  o.declare("a", ValueType::kBool);
  o.declare("b", ValueType::kBool);
  Context c;
  c.set("a", a);
  c.set("b", b);
  EXPECT_EQ(Expr::compile("a and b", o).test(c), a && b);
  EXPECT_EQ(Expr::compile("a or b", o).test(c), a || b);
  EXPECT_EQ(Expr::compile("not a", o).test(c), !a);
  EXPECT_EQ(Expr::compile("not (a and b) == (not a or not b)", o).test(c), true);  // De Morgan
}

INSTANTIATE_TEST_SUITE_P(TruthTable, ConnectiveTruth,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()));

}  // namespace
}  // namespace tussle::policy
