#include "net/queue.hpp"

#include <gtest/gtest.h>

namespace tussle::net {
namespace {

Packet pkt(ServiceClass tos, std::uint32_t size = 1000, std::uint64_t uid = 0) {
  Packet p;
  p.tos = tos;
  p.size_bytes = size;
  p.uid = uid;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(10);
  for (std::uint64_t i = 1; i <= 5; ++i)
    ASSERT_TRUE(q.enqueue(pkt(ServiceClass::kBestEffort, 100, i)));
  for (std::uint64_t i = 1; i <= 5; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p);
    EXPECT_EQ(p->uid, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTailQueue, DropsWhenFull) {
  DropTailQueue q(2);
  EXPECT_TRUE(q.enqueue(pkt(ServiceClass::kBestEffort)));
  EXPECT_TRUE(q.enqueue(pkt(ServiceClass::kBestEffort)));
  EXPECT_FALSE(q.enqueue(pkt(ServiceClass::kBestEffort)));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.packets(), 2u);
}

TEST(DropTailQueue, ByteAccountingConserved) {
  DropTailQueue q(10);
  q.enqueue(pkt(ServiceClass::kBestEffort, 300));
  q.enqueue(pkt(ServiceClass::kBestEffort, 700));
  EXPECT_EQ(q.bytes(), 1000u);
  q.dequeue();
  EXPECT_EQ(q.bytes(), 700u);
  q.dequeue();
  EXPECT_EQ(q.bytes(), 0u);
}

TEST(PriorityQueue, PremiumServedFirst) {
  PriorityQueue q(10);
  q.enqueue(pkt(ServiceClass::kBestEffort, 100, 1));
  q.enqueue(pkt(ServiceClass::kPremium, 100, 2));
  q.enqueue(pkt(ServiceClass::kAssured, 100, 3));
  EXPECT_EQ(q.dequeue()->uid, 2u);
  EXPECT_EQ(q.dequeue()->uid, 3u);
  EXPECT_EQ(q.dequeue()->uid, 1u);
}

TEST(PriorityQueue, PerClassIsolation) {
  PriorityQueue q(2);
  // Fill best-effort; premium must still be accepted.
  EXPECT_TRUE(q.enqueue(pkt(ServiceClass::kBestEffort)));
  EXPECT_TRUE(q.enqueue(pkt(ServiceClass::kBestEffort)));
  EXPECT_FALSE(q.enqueue(pkt(ServiceClass::kBestEffort)));
  EXPECT_TRUE(q.enqueue(pkt(ServiceClass::kPremium)));
  EXPECT_EQ(q.class_drops(ServiceClass::kBestEffort), 1u);
  EXPECT_EQ(q.class_drops(ServiceClass::kPremium), 0u);
}

TEST(PriorityQueue, FifoWithinClass) {
  PriorityQueue q(10);
  q.enqueue(pkt(ServiceClass::kAssured, 100, 1));
  q.enqueue(pkt(ServiceClass::kAssured, 100, 2));
  EXPECT_EQ(q.dequeue()->uid, 1u);
  EXPECT_EQ(q.dequeue()->uid, 2u);
}

TEST(DrrQueue, AllClassesEventuallyServed) {
  DrrQueue q(100, {1.0, 1.0, 1.0});
  for (int i = 0; i < 30; ++i) {
    q.enqueue(pkt(ServiceClass::kBestEffort));
    q.enqueue(pkt(ServiceClass::kAssured));
    q.enqueue(pkt(ServiceClass::kPremium));
  }
  int counts[3] = {0, 0, 0};
  while (auto p = q.dequeue()) counts[static_cast<int>(p->tos)]++;
  EXPECT_EQ(counts[0], 30);
  EXPECT_EQ(counts[1], 30);
  EXPECT_EQ(counts[2], 30);
}

TEST(DrrQueue, NoStarvationUnderSkewedWeights) {
  DrrQueue q(100, {1.0, 1.0, 8.0});
  for (int i = 0; i < 50; ++i) {
    q.enqueue(pkt(ServiceClass::kBestEffort));
    q.enqueue(pkt(ServiceClass::kPremium));
  }
  // Within the first 20 dequeues, best-effort must appear.
  int be_seen = 0;
  for (int i = 0; i < 20; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p);
    be_seen += (p->tos == ServiceClass::kBestEffort);
  }
  EXPECT_GT(be_seen, 0);
}

TEST(DrrQueue, ServiceRoughlyProportionalToWeights) {
  // Weights 1:1:4 with persistent backlog: count per-class service among
  // the first 60 dequeues; the premium class should get ~4x the others.
  DrrQueue q(1000, {1.0, 1.0, 4.0});
  for (int i = 0; i < 300; ++i) {
    q.enqueue(pkt(ServiceClass::kBestEffort, 1500));
    q.enqueue(pkt(ServiceClass::kAssured, 1500));
    q.enqueue(pkt(ServiceClass::kPremium, 1500));
  }
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 60; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p);
    counts[static_cast<int>(p->tos)]++;
  }
  EXPECT_GT(counts[2], 2 * counts[0]);
  EXPECT_GT(counts[0], 0);  // no starvation
  EXPECT_GT(counts[1], 0);
}

TEST(MakeQueue, FactoryProducesRequestedKind) {
  auto dt = make_queue(QueueKind::kDropTail, 4);
  auto pr = make_queue(QueueKind::kPriority, 4);
  auto dr = make_queue(QueueKind::kDrr, 4);
  ASSERT_TRUE(dt && pr && dr);
  // Behavioral check: priority queue reorders, drop-tail does not.
  dt->enqueue(pkt(ServiceClass::kBestEffort, 100, 1));
  dt->enqueue(pkt(ServiceClass::kPremium, 100, 2));
  EXPECT_EQ(dt->dequeue()->uid, 1u);
  pr->enqueue(pkt(ServiceClass::kBestEffort, 100, 1));
  pr->enqueue(pkt(ServiceClass::kPremium, 100, 2));
  EXPECT_EQ(pr->dequeue()->uid, 2u);
}

// Property sweep: conservation (everything enqueued is dequeued or dropped)
// across disciplines and loads.
class QueueConservation : public ::testing::TestWithParam<std::tuple<QueueKind, int>> {};

TEST_P(QueueConservation, InEqualsOutPlusDrops) {
  auto [kind, load] = GetParam();
  auto q = make_queue(kind, 16);
  int accepted = 0;
  for (int i = 0; i < load; ++i) {
    auto cls = static_cast<ServiceClass>(i % 3);
    accepted += q->enqueue(pkt(cls, 100 + i % 500));
  }
  int out = 0;
  while (q->dequeue()) ++out;
  EXPECT_EQ(out, accepted);
  EXPECT_EQ(static_cast<int>(q->drops()) + accepted, load);
  EXPECT_EQ(q->packets(), 0u);
  EXPECT_EQ(q->bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueueConservation,
    ::testing::Combine(::testing::Values(QueueKind::kDropTail, QueueKind::kPriority,
                                         QueueKind::kDrr),
                       ::testing::Values(1, 10, 16, 48, 200)));

}  // namespace
}  // namespace tussle::net
