#include "policy/rules.hpp"

#include <gtest/gtest.h>

namespace tussle::policy {
namespace {

Ontology onto() {
  Ontology o;
  o.declare("proto", ValueType::kString, "application");
  o.declare("tos", ValueType::kString, "qos");
  o.declare("size", ValueType::kNumber, "economics");
  o.declare("encrypted", ValueType::kBool, "security");
  return o;
}

Context web_ctx() {
  Context c;
  c.set("proto", "web");
  c.set("tos", "best-effort");
  c.set("size", 500.0);
  c.set("encrypted", false);
  return c;
}

TEST(PolicySet, DefaultAppliesWhenNoRuleMatches) {
  PolicySet ps(onto(), Effect::kDeny);
  auto d = ps.evaluate(web_ctx());
  EXPECT_EQ(d.effect, Effect::kDeny);
  EXPECT_TRUE(d.rule_name.empty());
}

TEST(PolicySet, FirstMatchWins) {
  PolicySet ps(onto(), Effect::kDeny);
  ps.add("allow-web", Effect::kPermit, "proto == 'web'");
  ps.add("deny-big", Effect::kDeny, "size > 100");
  auto d = ps.evaluate(web_ctx());
  EXPECT_EQ(d.effect, Effect::kPermit);
  EXPECT_EQ(d.rule_name, "allow-web");
}

TEST(PolicySet, OrderMatters) {
  PolicySet ps(onto(), Effect::kPermit);
  ps.add("deny-big", Effect::kDeny, "size > 100");
  ps.add("allow-web", Effect::kPermit, "proto == 'web'");
  EXPECT_EQ(ps.evaluate(web_ctx()).effect, Effect::kDeny);
}

TEST(PolicySet, RedirectCarriesTarget) {
  PolicySet ps(onto(), Effect::kPermit);
  ps.add("capture-mail", Effect::kRedirect, "proto == 'mail'", "application", "isp-mail");
  Context c = web_ctx();
  c.set("proto", "mail");
  auto d = ps.evaluate(c);
  EXPECT_EQ(d.effect, Effect::kRedirect);
  EXPECT_EQ(d.redirect_target, "isp-mail");
}

TEST(PolicySet, RedirectWithoutTargetRejected) {
  PolicySet ps(onto(), Effect::kPermit);
  EXPECT_THROW(ps.add("bad", Effect::kRedirect, "true"), PolicyError);
}

TEST(PolicySet, NonBooleanConditionRejected) {
  PolicySet ps(onto(), Effect::kPermit);
  EXPECT_THROW(ps.add("bad", Effect::kDeny, "size + 1"), TypeError);
}

TEST(PolicySet, UndeclaredAttributeRejectedAtAddTime) {
  PolicySet ps(onto(), Effect::kPermit);
  EXPECT_THROW(ps.add("bad", Effect::kDeny, "port == 80"), OntologyError);
}

TEST(PolicySet, RemoveRule) {
  PolicySet ps(onto(), Effect::kPermit);
  ps.add("deny-web", Effect::kDeny, "proto == 'web'");
  EXPECT_EQ(ps.evaluate(web_ctx()).effect, Effect::kDeny);
  EXPECT_TRUE(ps.remove("deny-web"));
  EXPECT_FALSE(ps.remove("deny-web"));
  EXPECT_EQ(ps.evaluate(web_ctx()).effect, Effect::kPermit);
}

TEST(PolicySet, ModularRuleSetHasNoCouplings) {
  PolicySet ps(onto(), Effect::kPermit);
  ps.add("qos-only", Effect::kPermit, "tos == 'premium'", "qos");
  ps.add("app-only", Effect::kDeny, "proto == 'p2p'", "application");
  EXPECT_TRUE(ps.cross_space_couplings().empty());
  EXPECT_DOUBLE_EQ(ps.spillover_index(), 0.0);
}

TEST(PolicySet, CrossSpaceRuleDetected) {
  // The anti-pattern from §IV-A: granting QoS based on what application is
  // running entangles the QoS tussle with the application tussle.
  PolicySet ps(onto(), Effect::kPermit);
  ps.add("qos-by-app", Effect::kPermit, "proto == 'voip' and tos == 'premium'", "qos");
  auto couplings = ps.cross_space_couplings();
  ASSERT_EQ(couplings.size(), 1u);
  EXPECT_EQ(couplings[0].rule_name, "qos-by-app");
  EXPECT_EQ(couplings[0].foreign_space, "application");
  EXPECT_EQ(couplings[0].attribute, "proto");
  EXPECT_DOUBLE_EQ(ps.spillover_index(), 0.5);  // 1 of 2 refs crosses
}

TEST(PolicySet, UntaggedRulesExemptFromAnalysis) {
  PolicySet ps(onto(), Effect::kPermit);
  ps.add("mixed", Effect::kDeny, "proto == 'p2p' and size > 100");
  EXPECT_TRUE(ps.cross_space_couplings().empty());
  EXPECT_DOUBLE_EQ(ps.spillover_index(), 0.0);
}

TEST(PolicySet, SpilloverIndexFullCoupling) {
  PolicySet ps(onto(), Effect::kPermit);
  ps.add("wrong-space", Effect::kDeny, "proto == 'p2p'", "qos");
  EXPECT_DOUBLE_EQ(ps.spillover_index(), 1.0);
}

TEST(Effect, ToString) {
  EXPECT_EQ(to_string(Effect::kPermit), "permit");
  EXPECT_EQ(to_string(Effect::kDeny), "deny");
  EXPECT_EQ(to_string(Effect::kRedirect), "redirect");
}

}  // namespace
}  // namespace tussle::policy
