#include "game/matrix_game.hpp"

#include <gtest/gtest.h>

#include "game/canonical.hpp"

namespace tussle::game {
namespace {

TEST(MatrixGame, ShapeValidation) {
  EXPECT_THROW(MatrixGame({}, {}), std::invalid_argument);
  EXPECT_THROW(MatrixGame({{1, 2}}, {{1, 2}, {3, 4}}), std::invalid_argument);
  EXPECT_THROW(MatrixGame({{1, 2}, {3}}, {{1, 2}, {3, 4}}), std::invalid_argument);
  EXPECT_THROW(MatrixGame({{1}}, {{1}}, {"a", "b"}, {"c"}), std::invalid_argument);
}

TEST(MatrixGame, ZeroSumConstructorNegates) {
  auto g = MatrixGame::zero_sum({{2, -1}, {0, 3}});
  EXPECT_TRUE(g.is_zero_sum());
  EXPECT_DOUBLE_EQ(g.col_payoff(0, 0), -2);
  EXPECT_DOUBLE_EQ(g.col_payoff(1, 1), -3);
}

TEST(MatrixGame, GeneralSumIsNotZeroSum) {
  EXPECT_FALSE(congestion_compliance_game().is_zero_sum());
}

TEST(MatrixGame, ExpectedPayoffPure) {
  auto g = congestion_compliance_game();
  auto [r, c] = g.expected_payoff({1, 0}, {0, 1});  // comply vs defect
  EXPECT_DOUBLE_EQ(r, 0);
  EXPECT_DOUBLE_EQ(c, 5);
}

TEST(MatrixGame, ExpectedPayoffMixed) {
  auto g = matching_pennies();
  auto [r, c] = g.expected_payoff({0.5, 0.5}, {0.5, 0.5});
  EXPECT_NEAR(r, 0.0, 1e-12);
  EXPECT_NEAR(c, 0.0, 1e-12);
}

TEST(MatrixGame, ExpectedPayoffDimensionCheck) {
  auto g = matching_pennies();
  EXPECT_THROW(g.expected_payoff({1.0}, {0.5, 0.5}), std::invalid_argument);
}

TEST(MatrixGame, BestResponses) {
  auto g = congestion_compliance_game();
  // Against a complier, defect (5 > 3). Against a defector, defect (1 > 0).
  EXPECT_EQ(g.best_row_response({1, 0}), 1u);
  EXPECT_EQ(g.best_row_response({0, 1}), 1u);
  EXPECT_EQ(g.best_col_response({1, 0}), 1u);
}

TEST(MatrixGame, PrisonersDilemmaNash) {
  auto g = congestion_compliance_game();
  auto eq = g.pure_nash();
  ASSERT_EQ(eq.size(), 1u);
  EXPECT_EQ(eq[0], (std::pair<std::size_t, std::size_t>{1, 1}));  // defect/defect
  EXPECT_FALSE(g.is_pure_nash(0, 0));  // mutual compliance is NOT stable
}

TEST(MatrixGame, MatchingPenniesHasNoPureNash) {
  EXPECT_TRUE(matching_pennies().pure_nash().empty());
}

TEST(MatrixGame, CoordinationGameHasTwoPureNash) {
  auto eq = standards_coordination_game().pure_nash();
  ASSERT_EQ(eq.size(), 2u);
  EXPECT_EQ(eq[0], (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(eq[1], (std::pair<std::size_t, std::size_t>{1, 1}));
}

TEST(MatrixGame, ChickenHasAsymmetricNash) {
  auto eq = peering_game().pure_nash();
  ASSERT_EQ(eq.size(), 2u);
  // (open, restrict) and (restrict, open).
  EXPECT_EQ(eq[0], (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(eq[1], (std::pair<std::size_t, std::size_t>{1, 0}));
}

TEST(MatrixGame, MixedNashVerification) {
  auto g = matching_pennies();
  EXPECT_TRUE(g.is_epsilon_nash({0.5, 0.5}, {0.5, 0.5}, 1e-9));
  EXPECT_FALSE(g.is_epsilon_nash({0.9, 0.1}, {0.5, 0.5}, 1e-9));
  // Skewed column play is exploitable.
  EXPECT_FALSE(g.is_epsilon_nash({0.5, 0.5}, {0.8, 0.2}, 0.1));
}

TEST(MatrixGame, DominanceInPd) {
  auto g = congestion_compliance_game();
  EXPECT_TRUE(g.row_strictly_dominated(0, 1));   // comply dominated by defect
  EXPECT_FALSE(g.row_strictly_dominated(1, 0));
  EXPECT_TRUE(g.col_strictly_dominated(0, 1));
}

TEST(MatrixGame, IteratedDominanceSolvesPd) {
  auto s = congestion_compliance_game().iterated_dominance();
  ASSERT_EQ(s.row_actions.size(), 1u);
  ASSERT_EQ(s.col_actions.size(), 1u);
  EXPECT_EQ(s.row_actions[0], 1u);
  EXPECT_EQ(s.col_actions[0], 1u);
}

TEST(MatrixGame, IteratedDominanceMultiRound) {
  // 3x3 game solvable only by iterated elimination.
  MatrixGame g({{3, 0, 2}, {1, 1, 1}, {0, 3, 0}},  // row
               {{3, 1, 0}, {0, 1, 3}, {2, 1, 0}},  // col
               {"a", "b", "c"}, {"x", "y", "z"});
  auto s = g.iterated_dominance();
  EXPECT_LE(s.row_actions.size(), 3u);
  EXPECT_LE(s.col_actions.size(), 3u);
}

TEST(MatrixGame, NamesDefaultAndCustom) {
  auto g = congestion_compliance_game();
  EXPECT_EQ(g.row_name(0), "comply");
  EXPECT_EQ(g.col_name(1), "defect");
  MatrixGame anon({{1}}, {{1}});
  EXPECT_EQ(anon.row_name(0), "r0");
}

TEST(Normalize, RejectsInvalid) {
  EXPECT_THROW(normalize({-0.1, 1.1}), std::invalid_argument);
  EXPECT_THROW(normalize({0, 0}), std::invalid_argument);
  auto m = normalize({2, 2});
  EXPECT_DOUBLE_EQ(m[0], 0.5);
}

TEST(QosInvestmentGame, NoValueFlowMakesSkipDominant) {
  // §VII: no way to charge for QoS (revenue 0), no user choice (bonus 0),
  // positive cost → nobody deploys.
  auto g = qos_investment_game(/*cost=*/2, /*revenue=*/0, /*competition_bonus=*/0);
  auto eq = g.pure_nash();
  ASSERT_EQ(eq.size(), 1u);
  EXPECT_EQ(eq[0], (std::pair<std::size_t, std::size_t>{1, 1}));  // skip/skip
}

TEST(QosInvestmentGame, ValueFlowPlusChoiceMakesDeployDominant) {
  auto g = qos_investment_game(/*cost=*/2, /*revenue=*/3, /*competition_bonus=*/2);
  auto eq = g.pure_nash();
  ASSERT_EQ(eq.size(), 1u);
  EXPECT_EQ(eq[0], (std::pair<std::size_t, std::size_t>{0, 0}));  // deploy/deploy
}

TEST(QosInvestmentGame, ChoiceAloneCanSustainDeploymentAsCoordination) {
  // Competition bonus but revenue < cost: deploying alone steals demand,
  // creating fear-driven deployment pressure even at negative margin.
  auto g = qos_investment_game(/*cost=*/2, /*revenue=*/1, /*competition_bonus=*/3);
  // deploy/deploy: 9 each; skip while rival deploys: 7. So deploy is better
  // when the rival deploys. deploy alone: 12 vs skip/skip 10.
  EXPECT_TRUE(g.is_pure_nash(0, 0));
  EXPECT_FALSE(g.is_pure_nash(1, 1));
}

TEST(ValuePricingGame, MonopolyIspValuePrices) {
  // No competition: ISP's value-price column dominates, user tunnels iff
  // cheap enough.
  auto g = value_pricing_game(/*tunnel_cost=*/1.0, /*competition=*/0.0);
  EXPECT_EQ(g.best_col_response({1, 0}), 1u);  // vs complying user: value-price
  // Facing value pricing, the user prefers the tunnel (6-1=5 > 3).
  EXPECT_EQ(g.best_row_response({0, 1}), 1u);
}

TEST(ValuePricingGame, CompetitionDisciplinesPricing) {
  auto g = value_pricing_game(/*tunnel_cost=*/1.0, /*competition=*/1.0);
  // Churn penalty 3 makes value pricing pay 4 vs flat 4 against compliers —
  // and strictly worse against tunnelers; flat is the best response to the
  // tunnelling user.
  EXPECT_EQ(g.best_col_response({0, 1}), 0u);
}

}  // namespace
}  // namespace tussle::game
