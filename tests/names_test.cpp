#include <gtest/gtest.h>

#include "names/name_system.hpp"
#include "names/workload.hpp"

namespace tussle::names {
namespace {

net::Address host(std::uint32_t n) {
  return net::Address{.provider = 1, .subscriber = n, .host = 1};
}

TEST(Entangled, BrandIsMachineName) {
  EntangledNameSystem s;
  auto machine = s.register_service("acme", host(1), "mail@acme");
  EXPECT_EQ(machine, "acme");
  EXPECT_EQ(s.lookup_brand("acme"), "acme");
  EXPECT_EQ(s.resolve_machine("acme"), host(1));
  EXPECT_EQ(s.resolve_mailbox("acme"), "mail@acme");
}

TEST(Modular, MachineNameIsOpaque) {
  ModularNameSystem s;
  auto machine = s.register_service("acme", host(1), "mail@acme");
  EXPECT_NE(machine, "acme");
  EXPECT_EQ(s.lookup_brand("acme"), machine);
  EXPECT_EQ(s.resolve_machine(machine), host(1));
  EXPECT_EQ(s.resolve_mailbox(machine), "mail@acme");
}

TEST(Entangled, DuplicateRegistrationRejected) {
  EntangledNameSystem s;
  s.register_service("acme", host(1), "m");
  EXPECT_THROW(s.register_service("acme", host(2), "m"), std::invalid_argument);
}

TEST(Modular, DuplicateBrandRejected) {
  ModularNameSystem s;
  s.register_service("acme", host(1), "m");
  EXPECT_THROW(s.register_service("acme", host(2), "m"), std::invalid_argument);
}

TEST(Entangled, DisputeBreaksEverything) {
  // The paper's complaint: the trademark tussle spills into machine naming
  // and mail because one name serves all three roles.
  EntangledNameSystem s;
  s.register_service("acme", host(1), "mail@acme");
  auto impact = s.dispute_trademark("acme");
  EXPECT_TRUE(impact.brand_suspended);
  EXPECT_TRUE(impact.machine_resolution_broken);
  EXPECT_TRUE(impact.mailbox_routing_broken);
  EXPECT_FALSE(s.lookup_brand("acme").has_value());
  EXPECT_FALSE(s.resolve_machine("acme").has_value());
  EXPECT_FALSE(s.resolve_mailbox("acme").has_value());
}

TEST(Modular, DisputeBreaksOnlyTheBrandPlane) {
  ModularNameSystem s;
  auto machine = s.register_service("acme", host(1), "mail@acme");
  auto impact = s.dispute_trademark("acme");
  EXPECT_TRUE(impact.brand_suspended);
  EXPECT_FALSE(impact.machine_resolution_broken);
  EXPECT_FALSE(impact.mailbox_routing_broken);
  EXPECT_FALSE(s.lookup_brand("acme").has_value());
  EXPECT_EQ(s.resolve_machine(machine), host(1));         // bookmarks still work
  EXPECT_EQ(s.resolve_mailbox(machine), "mail@acme");     // mail still flows
}

TEST(BothDesigns, DisputeOnUnknownBrandIsNoop) {
  EntangledNameSystem e;
  ModularNameSystem m;
  EXPECT_FALSE(e.dispute_trademark("ghost").brand_suspended);
  EXPECT_FALSE(m.dispute_trademark("ghost").brand_suspended);
}

TEST(BothDesigns, UnknownLookupsFailCleanly) {
  EntangledNameSystem e;
  EXPECT_FALSE(e.lookup_brand("x").has_value());
  EXPECT_FALSE(e.resolve_machine("x").has_value());
  ModularNameSystem m;
  EXPECT_FALSE(m.resolve_mailbox("m-99").has_value());
}

TEST(Workload, EntangledSpilloverMatchesDisputedPopularity) {
  EntangledNameSystem s;
  WorkloadConfig cfg;
  sim::Rng rng(5);
  auto r = run_workload(s, cfg, rng);
  // Disputed names are the most popular 10%; under Zipf they absorb far
  // more than 10% of traffic, so machine/mailbox failures are substantial.
  EXPECT_GT(r.spillover_rate(), 0.15);
  EXPECT_GT(r.brand_failure_rate(), 0.15);
}

TEST(Workload, ModularSpilloverIsZero) {
  ModularNameSystem s;
  WorkloadConfig cfg;
  sim::Rng rng(5);
  auto r = run_workload(s, cfg, rng);
  EXPECT_DOUBLE_EQ(r.spillover_rate(), 0.0);
  // The brand tussle still plays out — brand lookups do fail...
  EXPECT_GT(r.brand_failure_rate(), 0.15);
  // ...but it stays inside its own tussle space.
  EXPECT_EQ(r.machine_failures, 0u);
  EXPECT_EQ(r.mailbox_failures, 0u);
}

TEST(Workload, NoDisputesNoFailures) {
  EntangledNameSystem s;
  WorkloadConfig cfg;
  cfg.disputed_fraction = 0.0;
  sim::Rng rng(6);
  auto r = run_workload(s, cfg, rng);
  EXPECT_EQ(r.brand_failures + r.machine_failures + r.mailbox_failures, 0u);
}

TEST(Workload, LookupMixRoughlyAsConfigured) {
  ModularNameSystem s;
  WorkloadConfig cfg;
  cfg.lookups = 20000;
  sim::Rng rng(7);
  auto r = run_workload(s, cfg, rng);
  const double total = static_cast<double>(cfg.lookups);
  EXPECT_NEAR(r.brand_lookups / total, 0.2, 0.02);
  EXPECT_NEAR(r.machine_lookups / total, 0.5, 0.02);
  EXPECT_NEAR(r.mailbox_lookups / total, 0.3, 0.02);
}

}  // namespace
}  // namespace tussle::names
