#include <gtest/gtest.h>

#include "routing/path_vector.hpp"

namespace tussle::routing {
namespace {

AsGraph canonical() {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_customer_provider(3, 1);
  g.add_customer_provider(4, 1);
  g.add_customer_provider(5, 2);
  g.add_customer_provider(6, 3);
  g.add_customer_provider(7, 4);
  g.add_customer_provider(7, 5);
  return g;
}

TEST(Hijack, StubHijackerCapturesSomeTraffic) {
  // AS 7 falsely originates AS 6's prefix. Customer routes are preferred,
  // so 7's providers (4, 5) believe the hijacker.
  AsGraph g = canonical();
  auto h = simulate_hijack(g, /*true_origin=*/6, /*hijacker=*/7, /*validation=*/false);
  EXPECT_TRUE(h.converged);
  EXPECT_GT(h.captured, 0u);
  EXPECT_GT(h.legitimate, 0u);  // the true origin's own provider chain holds
  EXPECT_GT(h.capture_fraction, 0.2);
}

TEST(Hijack, OriginValidationRestoresTruth) {
  AsGraph g = canonical();
  auto h = simulate_hijack(g, 6, 7, /*validation=*/true);
  EXPECT_TRUE(h.converged);
  EXPECT_EQ(h.captured, 0u);
  EXPECT_EQ(h.unreachable, 0u);
  EXPECT_EQ(h.legitimate, h.total_ases);
}

TEST(Hijack, TrueOriginsOwnConeStaysLoyal) {
  // AS 3 is 6's provider: its direct customer route always beats the
  // hijacked route learned upstream.
  AsGraph g = canonical();
  PathVector pv(g);
  auto out = pv.compute_with_origins({6, 7}, false, 6);
  ASSERT_TRUE(out.routes.count(3));
  EXPECT_EQ(out.routes.at(3).as_path.back(), AsId{6});
}

TEST(Hijack, WellPlacedHijackerCapturesMore) {
  // A tier-2 hijacker (5) beats a stub hijacker (7) in reach.
  sim::Rng rng(3);
  auto h = make_hierarchy(rng, 3, 8, 24);
  const AsId victim = h.stubs[0];
  const AsId stub_attacker = h.stubs.back();
  const AsId transit_attacker = h.tier2[0];
  auto stub_result = simulate_hijack(h.graph, victim, stub_attacker, false);
  auto transit_result = simulate_hijack(h.graph, victim, transit_attacker, false);
  EXPECT_GE(transit_result.capture_fraction, stub_result.capture_fraction);
  EXPECT_GT(transit_result.capture_fraction, 0.3);
}

TEST(Hijack, ValidationWorksAcrossRandomTopologies) {
  for (std::uint64_t seed : {1, 7, 13}) {
    sim::Rng rng(seed);
    auto h = make_hierarchy(rng, 3, 6, 18);
    auto out = simulate_hijack(h.graph, h.stubs[0], h.stubs[1], /*validation=*/true);
    EXPECT_EQ(out.captured, 0u) << "seed " << seed;
  }
}

TEST(Hijack, SelfConsistentAccounting) {
  AsGraph g = canonical();
  auto h = simulate_hijack(g, 6, 7, false);
  EXPECT_EQ(h.captured + h.legitimate + h.unreachable, h.total_ases);
  EXPECT_EQ(h.total_ases, g.as_count() - 2);  // neither protagonist counted
}

TEST(Hijack, MultiOriginAnycastWithoutAttackSplitsCleanly) {
  // The same machinery models legitimate anycast: both origins are
  // authorized, nobody is "captured", and everyone picks the nearer copy.
  AsGraph g = canonical();
  PathVector pv(g);
  auto out = pv.compute_with_origins({6, 7}, false, 6);
  EXPECT_TRUE(out.converged);
  std::size_t to6 = 0, to7 = 0;
  for (const auto& [as, route] : out.routes) {
    if (as == 6 || as == 7) continue;
    (route.as_path.back() == 6 ? to6 : to7) += 1;
  }
  EXPECT_GT(to6, 0u);
  EXPECT_GT(to7, 0u);
}

}  // namespace
}  // namespace tussle::routing
