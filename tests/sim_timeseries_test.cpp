// The time-series recorder's contract: aligned tick grids regardless of
// when samples are requested, counter-delta vs gauge-level semantics, the
// convergence/oscillation detectors, golden exports, and byte-identical
// sweep output at any --jobs count.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/sweep.hpp"
#include "sim/metric_registry.hpp"
#include "sim/simulator.hpp"
#include "sim/timeseries.hpp"

namespace tussle::sim {
namespace {

TEST(TimeSeries, AppendRequiresStrictlyIncreasingTicks) {
  TimeSeries s;
  s.append(SimTime::millis(1), 1.0);
  s.append(SimTime::millis(2), 2.0);
  EXPECT_THROW(s.append(SimTime::millis(2), 3.0), std::logic_error);
  EXPECT_THROW(s.append(SimTime::millis(1), 3.0), std::logic_error);
  EXPECT_EQ(s.size(), 2u);
}

// ------------------------------------------------------------ tick grid --

TEST(TimeSeriesRecorder, MaybeSampleLandsOnAlignedTicksOnly) {
  TimeSeriesRecorder rec(Duration::millis(10));
  double v = 0;
  rec.probe("v", [&v] { return v; });

  rec.maybe_sample(SimTime::zero());        // tick 0
  v = 1;
  rec.maybe_sample(SimTime::millis(7));     // between ticks: no sample
  v = 2;
  rec.maybe_sample(SimTime::millis(23));    // passes ticks 10 and 20

  const TimeSeries* s = rec.store().find("v");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->size(), 3u);
  EXPECT_EQ(s->ticks()[0], SimTime::zero());
  EXPECT_EQ(s->ticks()[1], SimTime::millis(10));
  EXPECT_EQ(s->ticks()[2], SimTime::millis(20));
  // Both catch-up ticks see the state at the time of the call: the grid is
  // a pure function of the interval, the values are whatever is current.
  EXPECT_DOUBLE_EQ(s->values()[0], 0.0);
  EXPECT_DOUBLE_EQ(s->values()[1], 2.0);
  EXPECT_DOUBLE_EQ(s->values()[2], 2.0);
}

TEST(TimeSeriesRecorder, FinishAddsPartialTailOnlyWhenGridFellShort) {
  TimeSeriesRecorder rec(Duration::millis(10));
  rec.probe("v", [] { return 1.0; });
  rec.maybe_sample(SimTime::millis(20));  // ticks 0, 10, 20
  rec.finish(SimTime::millis(20));        // grid reached 20: no-op
  EXPECT_EQ(rec.store().find("v")->size(), 3u);

  rec.finish(SimTime::millis(23));        // interval does not divide 23
  const TimeSeries* s = rec.store().find("v");
  ASSERT_EQ(s->size(), 4u);
  EXPECT_EQ(s->ticks().back(), SimTime::millis(23));
}

TEST(TimeSeriesRecorder, AttachSamplesFromNowToHorizonInclusive) {
  Simulator sim(1);
  TimeSeriesRecorder rec(Duration::millis(10));
  double level = 0;
  rec.probe("level", [&level] { return level; });
  sim.schedule(Duration::millis(5), [&level] { level = 1; });
  sim.schedule(Duration::millis(25), [&level] { level = 2; });
  rec.attach(sim, SimTime::millis(30));
  sim.run();

  const TimeSeries* s = rec.store().find("level");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->size(), 4u);  // 0, 10, 20, 30 — bounded by the horizon
  EXPECT_EQ(s->ticks().back(), SimTime::millis(30));
  EXPECT_DOUBLE_EQ(s->values()[0], 0.0);
  EXPECT_DOUBLE_EQ(s->values()[1], 1.0);
  EXPECT_DOUBLE_EQ(s->values()[2], 1.0);
  EXPECT_DOUBLE_EQ(s->values()[3], 2.0);
}

// ----------------------------------------------- source semantics --------

TEST(TimeSeriesRecorder, CountersRecordDeltasGaugesRecordLevels) {
  TimeSeriesRecorder rec(Duration::millis(10));
  Counter c;
  c.add(100);  // pre-registration counts never appear in the series
  double g = 5;
  rec.track_counter("c", c);
  rec.probe("g", [&g] { return g; });

  rec.maybe_sample(SimTime::zero());
  c.add(3);
  g = 7;
  rec.maybe_sample(SimTime::millis(10));
  c.add(4);
  rec.maybe_sample(SimTime::millis(20));

  const TimeSeries* cs = rec.store().find("c");
  ASSERT_NE(cs, nullptr);
  EXPECT_DOUBLE_EQ(cs->values()[0], 0.0);  // delta since registration
  EXPECT_DOUBLE_EQ(cs->values()[1], 3.0);
  EXPECT_DOUBLE_EQ(cs->values()[2], 4.0);
  const TimeSeries* gs = rec.store().find("g");
  EXPECT_DOUBLE_EQ(gs->values()[0], 5.0);  // levels, not deltas
  EXPECT_DOUBLE_EQ(gs->values()[1], 7.0);
  EXPECT_DOUBLE_EQ(gs->values()[2], 7.0);
}

TEST(TimeSeriesRecorder, TimeWeightedRecordsCurrentAndRunningAverage) {
  TimeSeriesRecorder rec(Duration::millis(10));
  TimeWeighted tw;
  tw.set(SimTime::zero(), 0.0);
  rec.track_time_weighted("q", tw);

  rec.maybe_sample(SimTime::zero());
  tw.set(SimTime::millis(10), 10.0);
  rec.maybe_sample(SimTime::millis(20));

  const TimeSeries* cur = rec.store().find("q.current");
  const TimeSeries* avg = rec.store().find("q.avg");
  ASSERT_NE(cur, nullptr);
  ASSERT_NE(avg, nullptr);
  EXPECT_DOUBLE_EQ(cur->values().back(), 10.0);
  // 0 for 10ms then 10 for 10ms = 5 averaged over [0, 20ms].
  EXPECT_DOUBLE_EQ(avg->values().back(), 5.0);
}

TEST(TimeSeriesRecorder, WatchDispatchesOnRegistryKind) {
  MetricRegistry reg;
  reg.counter("hits").add(2);
  reg.gauge("depth", 9.0);
  reg.histogram("lat").observe(1.0);

  TimeSeriesRecorder rec(Duration::millis(10));
  rec.watch(reg, "hits");
  rec.watch(reg, "depth");
  EXPECT_THROW(rec.watch(reg, "lat"), std::logic_error);      // no scalar view
  EXPECT_THROW(rec.watch(reg, "absent"), std::logic_error);   // unregistered

  reg.counter("hits").add(5);
  rec.maybe_sample(SimTime::zero());
  EXPECT_DOUBLE_EQ(rec.store().find("hits")->values()[0], 5.0);
  EXPECT_DOUBLE_EQ(rec.store().find("depth")->values()[0], 9.0);
}

// ------------------------------------------------------------ detectors --

TimeSeries make_series(const std::vector<double>& values) {
  TimeSeries s;
  for (std::size_t i = 0; i < values.size(); ++i) {
    s.append(SimTime::millis(static_cast<std::int64_t>(10 * i)), values[i]);
  }
  return s;
}

TEST(AnalyzeSeries, DecayingSeriesConvergesAtPlateauStart) {
  std::vector<double> v;
  for (int i = 12; i >= 1; --i) v.push_back(static_cast<double>(i));  // 12..1
  for (int i = 0; i < 12; ++i) v.push_back(1.0);                      // plateau
  auto a = analyze_series(make_series(v));
  EXPECT_TRUE(a.converged);
  EXPECT_FALSE(a.oscillating);
  EXPECT_NEAR(a.converged_value, 1.0, 0.15);
  // The stable suffix reaches back to the value 2.0 at index 10: its span
  // (2 - 1 = 1) still fits the band of 2 × 5% of the full range (11), but
  // adding the 3.0 before it would not.
  EXPECT_EQ(a.converged_at, SimTime::millis(100));
  EXPECT_DOUBLE_EQ(a.final_value, 1.0);
}

TEST(AnalyzeSeries, ConstantSeriesConvergesAtFirstTick) {
  auto a = analyze_series(make_series(std::vector<double>(16, 3.5)));
  EXPECT_TRUE(a.converged);
  EXPECT_EQ(a.converged_at, SimTime::zero());
  EXPECT_DOUBLE_EQ(a.converged_value, 3.5);
}

TEST(AnalyzeSeries, SineWaveOscillatesAtItsTruePeriod) {
  std::vector<double> v;
  for (int i = 0; i < 64; ++i) {
    v.push_back(std::sin(2.0 * 3.14159265358979 * static_cast<double>(i) / 8.0));
  }
  auto a = analyze_series(make_series(v));
  EXPECT_FALSE(a.converged);
  ASSERT_TRUE(a.oscillating);
  EXPECT_GE(a.oscillation_strength, 0.8);
  // Period 8 samples × 10ms spacing.
  EXPECT_EQ(a.dominant_period, SimTime::millis(80));
}

TEST(AnalyzeSeries, WhiteNoiseIsNeitherConvergedNorOscillating) {
  // Deterministic "noise": a fixed LCG, full-range jumps every sample.
  std::uint64_t x = 88172645463325252ull;
  std::vector<double> v;
  for (int i = 0; i < 64; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    v.push_back(static_cast<double>(x >> 11) / 9007199254740992.0);
  }
  auto a = analyze_series(make_series(v));
  EXPECT_FALSE(a.converged);
  EXPECT_FALSE(a.oscillating);
}

TEST(AnalyzeSeries, TooFewSamplesNeverConverges) {
  auto a = analyze_series(make_series({1.0, 1.0, 1.0}));  // < window
  EXPECT_FALSE(a.converged);
  EXPECT_FALSE(a.oscillating);
}

// -------------------------------------------------------------- exports --

TEST(TimeSeriesStore, GoldenCsvAndJson) {
  TimeSeriesStore store;
  store.series("a").append(SimTime::zero(), 0.5);
  store.series("a").append(SimTime::millis(10), 1.0);
  store.series("b").append(SimTime::zero(), -2.25);

  EXPECT_EQ(store.to_csv(),
            "series,tick_ns,value\n"
            "a,0,0.5\n"
            "a,10000000,1\n"
            "b,0,-2.25\n");
  EXPECT_EQ(
      store.to_json(),
      R"({"series":[{"name":"a","ticks_ns":[0,10000000],"values":[0.5,1],)"
      R"("analysis":{"samples":2,"mean":0.75,"min":0.5,"max":1,"final":1,)"
      R"("converged":false,"oscillating":false}},{"name":"b","ticks_ns":[0],)"
      R"("values":[-2.25],"analysis":{"samples":1,"mean":-2.25,"min":-2.25,)"
      R"("max":-2.25,"final":-2.25,"converged":false,"oscillating":false}}]})");
}

TEST(TimeSeriesStore, MergePrefixedKeepsInsertionOrder) {
  TimeSeriesStore a, b;
  b.series("x").append(SimTime::zero(), 1.0);
  b.series("y").append(SimTime::zero(), 2.0);
  a.series("own").append(SimTime::zero(), 0.0);
  a.merge_prefixed("run0.", b);
  auto names = a.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "own");
  EXPECT_EQ(names[1], "run0.x");
  EXPECT_EQ(names[2], "run0.y");
  EXPECT_DOUBLE_EQ(a.find("run0.y")->values()[0], 2.0);
}

TEST(TimeSeriesDashboard, SelfContainedHtmlWithInlineSvg) {
  TimeSeriesStore store;
  for (int i = 0; i < 20; ++i) {
    store.series("adoption").append(SimTime::millis(10 * i),
                                    1.0 - 1.0 / (1.0 + static_cast<double>(i)));
  }
  const std::string html = timeseries_dashboard(store, "test & title");
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("test &amp; title"), std::string::npos);  // escaped
  EXPECT_EQ(html.find("<script"), std::string::npos);           // no JS, ever
  EXPECT_EQ(html.find("http://"), std::string::npos);           // no external assets
  EXPECT_EQ(html.find("https://"), std::string::npos);
  // Deterministic: same store, same bytes.
  EXPECT_EQ(html, timeseries_dashboard(store, "test & title"));
}

// ------------------------------------------------------- sweep identity --

TEST(SweepTimeseries, MergedExportsAreByteIdenticalAcrossJobCounts) {
  core::ScenarioSpec spec;
  spec.name = "ts-identity";
  spec.grid.axis("x", {1, 2, 3});
  spec.replicas = 2;
  spec.body = [](core::RunContext& ctx) {
    auto* rec = ctx.timeseries();
    ASSERT_NE(rec, nullptr);
    double acc = 0;
    rec->probe("acc", [&acc] { return acc; });
    for (int t = 0; t < 50; ++t) {
      acc += ctx.rng().uniform(0, ctx.param("x"));
      rec->maybe_sample(SimTime::millis(t + 1));
    }
    rec->finish(SimTime::millis(50));
  };

  auto merged_csv = [](const core::SweepResult& res) {
    TimeSeriesStore all;
    for (const auto& r : res.runs) {
      if (!r.timeseries) continue;
      const std::string prefix = res.points[r.point_index].label() + ".r" +
                                 std::to_string(r.replica) + ".";
      all.merge_prefixed(prefix, r.timeseries->store());
    }
    return all.to_csv();
  };

  core::SweepOptions serial;
  serial.base_seed = 5;
  serial.jobs = 1;
  serial.timeseries_seconds = 0.01;
  core::SweepOptions wide = serial;
  wide.jobs = 8;

  const std::string csv1 = merged_csv(core::run_sweep(spec, serial));
  const std::string csv8 = merged_csv(core::run_sweep(spec, wide));
  EXPECT_FALSE(csv1.empty());
  EXPECT_GT(csv1.size(), std::string("series,tick_ns,value\n").size());
  EXPECT_EQ(csv1, csv8);
}

TEST(SweepTimeseries, RecorderAbsentWhenNotRequested) {
  core::ScenarioSpec spec;
  spec.name = "ts-off";
  spec.body = [](core::RunContext& ctx) { EXPECT_EQ(ctx.timeseries(), nullptr); };
  auto res = core::run_sweep(spec);
  ASSERT_EQ(res.runs.size(), 1u);
  EXPECT_EQ(res.runs[0].timeseries, nullptr);
}

}  // namespace
}  // namespace tussle::sim
