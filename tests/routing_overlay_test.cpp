#include "routing/overlay.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "routing/link_state.hpp"

namespace tussle::routing {
namespace {

using net::Address;
using net::NodeId;

/// Star underlay: hub 0, members on leaves 1..4, with routes installed.
struct Fixture {
  sim::Simulator sim;
  net::Network net{sim};
  std::vector<NodeId> ids;
  std::map<NodeId, Address> members;

  Fixture() {
    ids = net::build_star(net, 4, 1, net::LinkSpec{});
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Address a{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
      net.node(ids[i]).add_address(a);
      if (i > 0) members[ids[i]] = a;
    }
    LinkState ls(net);
    ls.install_routes(ids);
  }
};

TEST(Overlay, DirectRouteWhenEdgePresent) {
  Fixture f;
  Overlay ov(f.net, f.members);
  ov.set_edge_cost(f.ids[1], f.ids[2], 1.0);
  auto path = ov.route(f.ids[1], f.ids[2]);
  EXPECT_EQ(path, (std::vector<NodeId>{f.ids[1], f.ids[2]}));
}

TEST(Overlay, RelaysAroundMissingEdge) {
  Fixture f;
  Overlay ov(f.net, f.members);
  // 1→3 has no direct overlay edge, but 1→2 and 2→3 exist.
  ov.set_edge_cost(f.ids[1], f.ids[2], 1.0);
  ov.set_edge_cost(f.ids[2], f.ids[3], 1.0);
  auto path = ov.route(f.ids[1], f.ids[3]);
  EXPECT_EQ(path, (std::vector<NodeId>{f.ids[1], f.ids[2], f.ids[3]}));
}

TEST(Overlay, PicksCheaperOfTwoRelays) {
  Fixture f;
  Overlay ov(f.net, f.members);
  ov.set_edge_cost(f.ids[1], f.ids[2], 10.0);
  ov.set_edge_cost(f.ids[2], f.ids[4], 10.0);
  ov.set_edge_cost(f.ids[1], f.ids[3], 1.0);
  ov.set_edge_cost(f.ids[3], f.ids[4], 1.0);
  auto path = ov.route(f.ids[1], f.ids[4]);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], f.ids[3]);
}

TEST(Overlay, BlockedEdgeRemoved) {
  Fixture f;
  Overlay ov(f.net, f.members);
  ov.set_edge_cost(f.ids[1], f.ids[2], 1.0);
  ov.block_edge(f.ids[1], f.ids[2]);
  EXPECT_TRUE(ov.route(f.ids[1], f.ids[2]).empty());
  EXPECT_FALSE(ov.edge_cost(f.ids[1], f.ids[2]).has_value());
}

TEST(Overlay, SendDeliversThroughRelay) {
  Fixture f;
  Overlay ov(f.net, f.members);
  ov.set_edge_cost(f.ids[1], f.ids[2], 1.0);
  ov.set_edge_cost(f.ids[2], f.ids[3], 1.0);

  net::Packet inner;
  inner.src = f.members.at(f.ids[1]);
  inner.dst = f.members.at(f.ids[3]);
  inner.proto = net::AppProto::kWeb;
  inner.payload_tag = "via-overlay";

  int got = 0;
  f.net.node(f.ids[3]).set_local_handler([&](const net::Packet& p) {
    if (p.payload_tag == "via-overlay" && !p.inner) ++got;
  });
  auto used = ov.send(f.ids[1], f.ids[3], std::move(inner));
  ASSERT_EQ(used.size(), 3u);
  f.sim.run();
  EXPECT_EQ(got, 1);
}

TEST(Overlay, SendDefeatsOnPathBlocking) {
  // The underlay hub blocks web from member 1 to member 3 specifically.
  // The overlay relays via member 2 with tunnels, and the hub's DPI sees
  // only VPN frames — the §V-A-4 "overlays route around policy" move.
  Fixture f;
  const Address src1 = f.members.at(f.ids[1]);
  const Address dst3 = f.members.at(f.ids[3]);
  f.net.node(f.ids[0]).add_filter(net::PacketFilter{
      .name = "hub-censor",
      .disclosed = false,
      .fn = [&](const net::Packet& p) {
        if (p.observable_proto() == net::AppProto::kWeb && p.dst == dst3) {
          return net::FilterDecision::drop("censored");
        }
        return net::FilterDecision::accept();
      }});

  // Direct send: filtered.
  net::Packet direct;
  direct.src = src1;
  direct.dst = dst3;
  direct.proto = net::AppProto::kWeb;
  f.net.node(f.ids[1]).originate(std::move(direct));
  f.sim.run();
  EXPECT_EQ(f.net.counters().dropped_filter.value(), 1);
  EXPECT_EQ(f.net.counters().delivered.value(), 0);

  // Overlay send via member 2: tunnel frames pass the censor.
  Overlay ov(f.net, f.members);
  ov.set_edge_cost(f.ids[1], f.ids[2], 1.0);
  ov.set_edge_cost(f.ids[2], f.ids[3], 1.0);
  net::Packet inner;
  inner.src = src1;
  inner.dst = dst3;
  inner.proto = net::AppProto::kWeb;
  ov.send(f.ids[1], f.ids[3], std::move(inner));
  f.sim.run();
  EXPECT_EQ(f.net.counters().delivered.value(), 1);
}

TEST(Overlay, NonMemberEdgeRejected) {
  Fixture f;
  Overlay ov(f.net, f.members);
  EXPECT_THROW(ov.set_edge_cost(f.ids[0], f.ids[1], 1.0), std::invalid_argument);
}

TEST(Overlay, SendWithoutPathSendsNothing) {
  Fixture f;
  Overlay ov(f.net, f.members);
  net::Packet inner;
  inner.src = f.members.at(f.ids[1]);
  inner.dst = f.members.at(f.ids[3]);
  EXPECT_TRUE(ov.send(f.ids[1], f.ids[3], std::move(inner)).empty());
  f.sim.run();
  EXPECT_EQ(f.net.counters().originated.value(), 0);
}

}  // namespace
}  // namespace tussle::routing
