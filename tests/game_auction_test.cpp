#include "game/auction.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace tussle::game {
namespace {

TEST(Vickrey, WinnerPaysSecondPrice) {
  auto r = vickrey_auction({{"a", 10}, {"b", 7}, {"c", 3}});
  EXPECT_EQ(r.winner, "a");
  EXPECT_DOUBLE_EQ(r.price, 7);
  EXPECT_DOUBLE_EQ(r.social_value, 10);
}

TEST(Vickrey, SingleBidderPaysNothing) {
  auto r = vickrey_auction({{"solo", 5}});
  EXPECT_EQ(r.winner, "solo");
  EXPECT_DOUBLE_EQ(r.price, 0);
}

TEST(Vickrey, EmptyAuction) {
  auto r = vickrey_auction({});
  EXPECT_TRUE(r.winner.empty());
}

TEST(Vickrey, TieGoesToEarlierBid) {
  auto r = vickrey_auction({{"a", 5}, {"b", 5}});
  EXPECT_EQ(r.winner, "a");
  EXPECT_DOUBLE_EQ(r.price, 5);
}

TEST(FirstPrice, WinnerPaysOwnBid) {
  auto r = first_price_auction({{"a", 10}, {"b", 7}});
  EXPECT_EQ(r.winner, "a");
  EXPECT_DOUBLE_EQ(r.price, 10);
}

TEST(VcgUniform, KWinnersPayClearingPrice) {
  auto rs = vcg_uniform({{"a", 10}, {"b", 8}, {"c", 6}, {"d", 4}}, 2);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].winner, "a");
  EXPECT_EQ(rs[1].winner, "b");
  EXPECT_DOUBLE_EQ(rs[0].price, 6);
  EXPECT_DOUBLE_EQ(rs[1].price, 6);
}

TEST(VcgUniform, FewerBiddersThanItemsIsFree) {
  auto rs = vcg_uniform({{"a", 10}, {"b", 8}}, 5);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_DOUBLE_EQ(rs[0].price, 0);
}

TEST(VcgUniform, ZeroItems) {
  EXPECT_TRUE(vcg_uniform({{"a", 1}}, 0).empty());
}

TEST(VickreyUtility, TruthfulWinningAndLosing) {
  // Value above rivals: win, pay top rival.
  EXPECT_DOUBLE_EQ(vickrey_utility(10, 10, {7, 3}), 3);
  // Value below rivals: lose, zero.
  EXPECT_DOUBLE_EQ(vickrey_utility(5, 5, {7}), 0);
}

TEST(VickreyUtility, OverbiddingCanOnlyHurt) {
  // True value 5, top rival 7. Overbidding to 8 wins at price 7 → utility -2.
  EXPECT_DOUBLE_EQ(vickrey_utility(5, 8, {7}), -2);
  EXPECT_DOUBLE_EQ(vickrey_utility(5, 5, {7}), 0);
}

TEST(VickreyUtility, UnderbiddingCanOnlyLoseSurplus) {
  // True value 10, top rival 7. Shading to 6 forfeits the +3 win.
  EXPECT_DOUBLE_EQ(vickrey_utility(10, 6, {7}), 0);
  EXPECT_DOUBLE_EQ(vickrey_utility(10, 10, {7}), 3);
}

TEST(FirstPriceUtility, TruthTellingYieldsZero) {
  EXPECT_DOUBLE_EQ(first_price_utility(10, 10, {7}), 0);
  // Shading to just above the rival is profitable — non-truthful mechanism.
  EXPECT_DOUBLE_EQ(first_price_utility(10, 7.5, {7}), 2.5);
}

// Property: truth-telling is a dominant strategy under Vickrey — for random
// values, rivals, and deviations, deviating never beats honesty.
class VickreyTruthfulness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VickreyTruthfulness, HonestyDominates) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    const double value = rng.uniform(0, 100);
    std::vector<double> rivals;
    const int n = static_cast<int>(rng.uniform_int(1, 6));
    for (int i = 0; i < n; ++i) rivals.push_back(rng.uniform(0, 100));
    const double honest = vickrey_utility(value, value, rivals);
    const double deviant_bid = rng.uniform(0, 120);
    const double deviant = vickrey_utility(value, deviant_bid, rivals);
    EXPECT_LE(deviant, honest + 1e-12)
        << "value=" << value << " bid=" << deviant_bid << " seed=" << GetParam();
    EXPECT_GE(honest, 0.0);  // individual rationality
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VickreyTruthfulness, ::testing::Values(1, 2, 3, 4));

// Contrast property: under first-price, some shading strictly beats honesty
// whenever the honest bidder would win.
TEST(FirstPriceUtility, ShadingBeatsHonestyWhenWinning) {
  sim::Rng rng(77);
  int profitable = 0, wins = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const double value = rng.uniform(50, 100);
    std::vector<double> rivals{rng.uniform(0, 49)};
    if (value > rivals[0]) {
      ++wins;
      const double shaded = 0.5 * (value + rivals[0]);
      if (first_price_utility(value, shaded, rivals) >
          first_price_utility(value, value, rivals)) {
        ++profitable;
      }
    }
  }
  EXPECT_EQ(profitable, wins);
  EXPECT_GT(wins, 0);
}

}  // namespace
}  // namespace tussle::game
