#include "routing/source_route.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tussle::routing {
namespace {

AsGraph canonical() {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_customer_provider(3, 1);
  g.add_customer_provider(4, 1);
  g.add_customer_provider(5, 2);
  g.add_customer_provider(6, 3);
  g.add_customer_provider(7, 4);
  g.add_customer_provider(7, 5);
  g.add_as(8);
  g.add_peering(7, 8);
  return g;
}

TEST(SourceRouteBuilder, ShortestPathFound) {
  AsGraph g = canonical();
  SourceRouteBuilder b(g);
  auto p = b.shortest_path(6, 7);
  // 6-3-1-4-7 (4 hops) is shortest.
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(p.front(), AsId{6});
  EXPECT_EQ(p.back(), AsId{7});
}

TEST(SourceRouteBuilder, TrivialAndUnreachable) {
  AsGraph g = canonical();
  g.add_as(99);  // isolated
  SourceRouteBuilder b(g);
  EXPECT_EQ(b.shortest_path(4, 4), (std::vector<AsId>{4}));
  EXPECT_TRUE(b.shortest_path(6, 99).empty());
}

TEST(SourceRouteBuilder, KShortestAreDistinctLoopFreeAndSorted) {
  AsGraph g = canonical();
  SourceRouteBuilder b(g);
  auto paths = b.k_shortest_paths(6, 7, 4);
  ASSERT_GE(paths.size(), 2u);
  std::set<std::vector<AsId>> unique(paths.begin(), paths.end());
  EXPECT_EQ(unique.size(), paths.size());
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].size(), paths[i - 1].size());
  }
  for (const auto& p : paths) {
    std::set<AsId> nodes(p.begin(), p.end());
    EXPECT_EQ(nodes.size(), p.size()) << "loop in path";
    EXPECT_EQ(p.front(), AsId{6});
    EXPECT_EQ(p.back(), AsId{7});
    // Consecutive elements must be real edges.
    for (std::size_t j = 0; j + 1 < p.size(); ++j) {
      EXPECT_TRUE(g.relationship(p[j], p[j + 1]).has_value());
    }
  }
}

TEST(SourceRouteBuilder, KShortestYieldsBothUpstreams) {
  // 7 is multihomed (providers 4 and 5): user routing should surface both
  // exits — the provider-choice the paper wants users to have.
  AsGraph g = canonical();
  SourceRouteBuilder b(g);
  auto paths = b.k_shortest_paths(7, 1, 3);
  ASSERT_GE(paths.size(), 2u);
  std::set<AsId> first_hops;
  for (const auto& p : paths) first_hops.insert(p[1]);
  EXPECT_TRUE(first_hops.count(4));
  EXPECT_TRUE(first_hops.count(5));
}

TEST(SourceRouteBuilder, OffContractDetection) {
  AsGraph g = canonical();
  SourceRouteBuilder b(g);
  // Valley path 4-7-5: transit AS 7 is carrying traffic between its two
  // *providers* — nobody on either side pays 7.
  auto off = b.off_contract_ases({4, 7, 5});
  ASSERT_EQ(off.size(), 1u);
  EXPECT_EQ(off[0], AsId{7});
  EXPECT_FALSE(b.free_of_charge({4, 7, 5}));
}

TEST(SourceRouteBuilder, OnContractPathsNeedNoPayment) {
  AsGraph g = canonical();
  SourceRouteBuilder b(g);
  // 6-3-1-4-7: transit 3 has customer 6 upstream; 1 has customer 3; 4 has
  // customer 7 downstream. All on contract.
  EXPECT_TRUE(b.off_contract_ases({6, 3, 1, 4, 7}).empty());
  EXPECT_TRUE(b.free_of_charge({6, 3, 1, 4, 7}));
}

TEST(SourceRouteBuilder, PeerTransitIsOffContract) {
  AsGraph g = canonical();
  SourceRouteBuilder b(g);
  // 8 -(peer)- 7 -> 4: 7 carries peer traffic up to its provider; 7 sees no
  // customer on either side, and 4 sees its customer 7, so only 7 is owed.
  auto off = b.off_contract_ases({8, 7, 4});
  ASSERT_EQ(off.size(), 1u);
  EXPECT_EQ(off[0], AsId{7});
}

TEST(SourceRouteBuilder, KLargerThanPathCountReturnsAll) {
  AsGraph g;
  g.add_customer_provider(2, 1);
  g.add_customer_provider(3, 1);
  SourceRouteBuilder b(g);
  auto paths = b.k_shortest_paths(2, 3, 10);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<AsId>{2, 1, 3}));
}

TEST(SourceRouteBuilder, KZeroReturnsNothing) {
  AsGraph g = canonical();
  SourceRouteBuilder b(g);
  EXPECT_TRUE(b.k_shortest_paths(6, 7, 0).empty());
}

}  // namespace
}  // namespace tussle::routing
