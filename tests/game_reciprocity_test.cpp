// Social enforcement of congestion-control compliance (§II-B): the paper
// notes the current Internet "works" because social pressure holds — these
// tests show reciprocity strategies sustaining the cooperative outcome that
// one-shot rationality destroys, and its fragility against a committed
// defector.
#include <gtest/gtest.h>

#include "game/canonical.hpp"
#include "game/learners.hpp"

namespace tussle::game {
namespace {

TEST(TitForTat, SustainsMutualCompliance) {
  auto g = congestion_compliance_game();
  TitForTat a, b;
  sim::Rng rng(1);
  auto out = play_repeated(g, a, b, 1000, rng);
  EXPECT_DOUBLE_EQ(out.row_empirical[0], 1.0);  // full compliance
  EXPECT_DOUBLE_EQ(out.col_empirical[0], 1.0);
  EXPECT_DOUBLE_EQ(out.row_mean_payoff, 3.0);   // the cooperative payoff
}

TEST(TitForTat, RetaliatesAgainstAlwaysDefect) {
  auto g = congestion_compliance_game();
  TitForTat nice;
  FixedStrategy bully(Mixed{0.0, 1.0});
  sim::Rng rng(2);
  auto out = play_repeated(g, nice, bully, 1000, rng);
  // One sucker round, then permanent mutual defection.
  EXPECT_NEAR(out.row_empirical[0], 1.0 / 1000, 1e-9);
  EXPECT_NEAR(out.row_mean_payoff, 1.0, 0.01);
}

TEST(GrimTrigger, NeverForgivesASingleDefection) {
  auto g = congestion_compliance_game();
  GrimTrigger grim;
  // Defect exactly once at round 10, cooperate otherwise.
  class OneDefection final : public Learner {
   public:
    std::string name() const override { return "one-shot-cheat"; }
    std::size_t choose(sim::Rng&) override { return round_++ == 10 ? 1u : 0u; }
    void observe(std::size_t, double) override {}

   private:
    int round_ = 0;
  } cheat;
  sim::Rng rng(3);
  auto out = play_repeated(g, grim, cheat, 100, rng);
  // Grim cooperates for rounds 0..11 (it reacts one round late), then
  // defects for the remaining 88.
  EXPECT_NEAR(out.row_empirical[1], 88.0 / 100, 0.03);
}

TEST(GrimTrigger, MutualCooperationForever) {
  auto g = congestion_compliance_game();
  GrimTrigger a, b;
  sim::Rng rng(4);
  auto out = play_repeated(g, a, b, 500, rng);
  EXPECT_DOUBLE_EQ(out.row_empirical[0], 1.0);
}

TEST(Reciprocity, SocialPressureBeatsOneShotRationality) {
  // The §II-B contrast in one test: regret-matching pairs (no memory of
  // the *relationship*, only of payoffs) end in mutual defection; TFT
  // pairs sustain compliance at a strictly higher joint payoff.
  auto g = congestion_compliance_game();
  sim::Rng rng(5);
  RegretMatching ra(row_payoff_matrix(g));
  RegretMatching rb(col_payoff_matrix(g));
  auto selfish = play_repeated(g, ra, rb, 5000, rng);
  TitForTat ta, tb;
  auto social = play_repeated(g, ta, tb, 5000, rng);
  EXPECT_GT(social.row_mean_payoff + social.col_mean_payoff,
            selfish.row_mean_payoff + selfish.col_mean_payoff + 2.0);
}

TEST(Reciprocity, EnforcementFailsAgainstChurningDefectors) {
  // The paper's caveat: social pressure works only while players are
  // identifiable and persistent. A fresh anonymous defector each epoch
  // (modeled as a reset TFT opponent facing a bully) never gets punished
  // long enough to matter.
  auto g = congestion_compliance_game();
  double bully_total = 0;
  sim::Rng rng(6);
  const int epochs = 50;
  for (int e = 0; e < epochs; ++e) {
    TitForTat fresh_victim;  // has never met this bully before
    FixedStrategy bully(Mixed{0.0, 1.0});
    auto out = play_repeated(g, fresh_victim, bully, 2, rng);  // hit & run
    bully_total += out.col_mean_payoff * 2;
  }
  // Hit-and-run nets the temptation payoff half the time: (5+1)/2 per
  // round, far above the cooperative 3 it could not have gotten honestly
  // from a wary population.
  EXPECT_NEAR(bully_total / (epochs * 2), 3.0, 0.01);
  EXPECT_GT(bully_total / (epochs * 2), 1.0);  // beats the punished path
}

}  // namespace
}  // namespace tussle::game
