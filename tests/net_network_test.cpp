#include "net/network.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace tussle::net {
namespace {

Address addr(AsId as, std::uint32_t sub, std::uint32_t host) {
  return Address{.provider = as, .subscriber = sub, .host = host};
}

/// Two hosts with a router in between; installs static routes.
struct Triangle {
  sim::Simulator sim;
  Network net{sim};
  NodeId a, r, b;
  Address addr_a = addr(1, 1, 1);
  Address addr_b = addr(1, 2, 1);

  Triangle() {
    a = net.add_node(1);
    r = net.add_node(1);
    b = net.add_node(1);
    net.connect(a, r, 10e6, sim::Duration::millis(1));
    net.connect(r, b, 10e6, sim::Duration::millis(1));
    net.node(a).add_address(addr_a);
    net.node(b).add_address(addr_b);
    // a: everything via iface 0. r: per-prefix. b: default back.
    net.node(a).forwarding().set_default_route(0);
    net.node(r).forwarding().set_prefix_route(prefix_of(addr_a), 0);
    net.node(r).forwarding().set_prefix_route(prefix_of(addr_b), 1);
    net.node(b).forwarding().set_default_route(0);
  }

  Packet make(Address to, AppProto proto = AppProto::kWeb) {
    Packet p;
    p.src = addr_a;
    p.dst = to;
    p.proto = proto;
    p.size_bytes = 1000;
    return p;
  }
};

TEST(Network, DeliversAcrossRouter) {
  Triangle t;
  int delivered = 0;
  t.net.node(t.b).set_local_handler([&](const Packet&) { ++delivered; });
  t.net.node(t.a).originate(t.make(t.addr_b));
  t.sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(t.net.counters().delivered.value(), 1);
  EXPECT_EQ(t.net.counters().forwarded.value(), 1);
}

TEST(Network, LatencyIncludesSerializationAndPropagation) {
  Triangle t;
  t.net.node(t.a).originate(t.make(t.addr_b));
  t.sim.run();
  // 2 hops: each 1000B at 10 Mb/s = 0.8 ms serialization + 1 ms propagation.
  const double expect_s = 2 * (0.0008 + 0.001);
  EXPECT_NEAR(t.net.counters().delivery_latency_s.mean(), expect_s, 1e-6);
}

TEST(Network, NoRouteCounted) {
  Triangle t;
  t.net.node(t.r).forwarding().erase_prefix_route(prefix_of(t.addr_b));
  t.net.node(t.a).originate(t.make(t.addr_b));
  t.sim.run();
  EXPECT_EQ(t.net.counters().delivered.value(), 0);
  EXPECT_EQ(t.net.counters().dropped_no_route.value(), 1);
}

TEST(Network, TtlExpiryDropsLoopedPacket) {
  // a and r point at each other: a routing loop.
  Triangle t;
  t.net.node(t.r).forwarding().clear();
  t.net.node(t.r).forwarding().set_default_route(0);  // back toward a
  Packet p = t.make(addr(9, 9, 9));
  p.ttl = 10;
  t.net.node(t.a).originate(std::move(p));
  t.sim.run();
  EXPECT_EQ(t.net.counters().dropped_ttl.value(), 1);
  EXPECT_EQ(t.net.counters().delivered.value(), 0);
}

TEST(Network, FilterDropsAndCounts) {
  Triangle t;
  t.net.node(t.r).add_filter(PacketFilter{
      .name = "block-web",
      .disclosed = true,
      .fn = [](const Packet& p) {
        return p.observable_proto() == AppProto::kWeb ? FilterDecision::drop("no web")
                                                      : FilterDecision::accept();
      }});
  t.net.node(t.a).originate(t.make(t.addr_b, AppProto::kWeb));
  t.net.node(t.a).originate(t.make(t.addr_b, AppProto::kMail));
  t.sim.run();
  EXPECT_EQ(t.net.counters().dropped_filter.value(), 1);
  EXPECT_EQ(t.net.counters().delivered.value(), 1);
}

TEST(Network, EncryptionDefeatsProtocolFilter) {
  // The §VI-A escalation: DPI blocks web; sender encrypts; packet passes.
  Triangle t;
  t.net.node(t.r).add_filter(PacketFilter{
      .name = "dpi",
      .disclosed = false,
      .fn = [](const Packet& p) {
        return p.observable_proto() == AppProto::kWeb ? FilterDecision::drop("dpi")
                                                      : FilterDecision::accept();
      }});
  Packet p = t.make(t.addr_b, AppProto::kWeb);
  p.encrypted = true;
  t.net.node(t.a).originate(std::move(p));
  t.sim.run();
  EXPECT_EQ(t.net.counters().delivered.value(), 1);
}

TEST(Network, RedirectRewritesDestination) {
  // ISP-style SMTP capture: mail to anywhere is redirected to b.
  Triangle t;
  Address trap = t.addr_b;
  t.net.node(t.r).add_filter(PacketFilter{
      .name = "smtp-capture",
      .disclosed = false,
      .fn = [trap](const Packet& p) {
        return p.observable_proto() == AppProto::kMail
                   ? FilterDecision::redirect(trap, "isp mail policy")
                   : FilterDecision::accept();
      }});
  int at_b = 0;
  t.net.node(t.b).set_local_handler([&](const Packet&) { ++at_b; });
  t.net.node(t.a).originate(t.make(addr(5, 5, 5), AppProto::kMail));
  t.sim.run();
  EXPECT_EQ(at_b, 1);
  EXPECT_EQ(t.net.counters().redirected.value(), 1);
}

TEST(Network, DisclosureListsOnlyDisclosedFilters) {
  Triangle t;
  t.net.node(t.r).add_filter(
      PacketFilter{"open-firewall", true, [](const Packet&) { return FilterDecision::accept(); }});
  t.net.node(t.r).add_filter(
      PacketFilter{"covert-tap", false, [](const Packet&) { return FilterDecision::accept(); }});
  auto names = t.net.node(t.r).disclosed_filter_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "open-firewall");
  EXPECT_TRUE(t.net.node(t.r).remove_filter("covert-tap"));
  EXPECT_FALSE(t.net.node(t.r).remove_filter("covert-tap"));
}

TEST(Network, LinkDownDropsTraffic) {
  Triangle t;
  t.net.link(0).set_up(false);
  t.net.node(t.a).originate(t.make(t.addr_b));
  t.sim.run();
  EXPECT_EQ(t.net.counters().delivered.value(), 0);
  EXPECT_EQ(t.net.counters().dropped_link_down.value(), 1);
}

TEST(Network, QueueOverflowDropsUnderBurst) {
  sim::Simulator sim;
  Network net(sim);
  NodeId a = net.add_node(1), b = net.add_node(1);
  net.connect(a, b, 1e6, sim::Duration::millis(1), QueueKind::kDropTail, 4);
  Address dst = addr(1, 2, 1);
  net.node(b).add_address(dst);
  net.node(a).forwarding().set_default_route(0);
  for (int i = 0; i < 50; ++i) {
    Packet p;
    p.src = addr(1, 1, 1);
    p.dst = dst;
    p.size_bytes = 1500;
    net.node(a).originate(std::move(p));
  }
  sim.run();
  EXPECT_GT(net.counters().dropped_queue.value(), 0);
  EXPECT_EQ(net.counters().delivered.value() + net.counters().dropped_queue.value(), 50);
}

TEST(Network, SourceRouteSteersPackets) {
  // Diamond: a - {top AS 2, bottom AS 3} - b. Default routing goes top;
  // a source route via AS 3 must take the bottom path.
  sim::Simulator sim;
  Network net(sim);
  NodeId a = net.add_node(1), top = net.add_node(2), bot = net.add_node(3), b = net.add_node(4);
  net.connect(a, top, 10e6, sim::Duration::millis(1));   // a iface 0
  net.connect(a, bot, 10e6, sim::Duration::millis(1));   // a iface 1
  net.connect(top, b, 10e6, sim::Duration::millis(1));
  net.connect(bot, b, 10e6, sim::Duration::millis(1));
  Address dst = addr(4, 1, 1);
  net.node(b).add_address(dst);
  net.node(a).forwarding().set_default_route(0);
  net.node(a).forwarding().set_as_route(2, 0);
  net.node(a).forwarding().set_as_route(3, 1);
  net.node(top).forwarding().set_default_route(1);
  net.node(bot).forwarding().set_default_route(1);
  net.node(b).forwarding().set_default_route(0);

  Packet p;
  p.src = addr(1, 1, 1);
  p.dst = dst;
  p.source_route = SourceRoute{.hops = {3, 4}, .next = 0};
  net.node(a).originate(std::move(p));
  sim.run();
  EXPECT_EQ(net.counters().delivered.value(), 1);
  EXPECT_EQ(net.link(3).tx_packets(bot), 1u);  // bottom egress carried it
  EXPECT_EQ(net.link(2).tx_packets(top), 0u);  // top egress did not
}

TEST(Network, VpnTunnelTraversesGatewayAndUnwraps) {
  // a -> r(gateway) -> b where a tunnels to r; r decapsulates and forwards.
  Triangle t;
  Address gw = addr(1, 3, 1);
  t.net.node(t.r).add_address(gw);
  Packet inner = t.make(t.addr_b, AppProto::kP2p);
  Packet outer = inner.encapsulate(t.addr_a, gw);
  int delivered_proto = -1;
  t.net.node(t.b).set_local_handler(
      [&](const Packet& p) { delivered_proto = static_cast<int>(p.proto); });
  t.net.node(t.a).originate(std::move(outer));
  t.sim.run();
  EXPECT_EQ(delivered_proto, static_cast<int>(AppProto::kP2p));
}

TEST(Network, NeighborsEnumeratesLinks) {
  Triangle t;
  auto nbrs = t.net.neighbors(t.r);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0].first, t.a);
  EXPECT_EQ(nbrs[1].first, t.b);
}

TEST(Network, DeliveryObserverSeesPackets) {
  Triangle t;
  std::vector<NodeId> seen;
  t.net.set_delivery_observer([&](const Packet&, NodeId at) { seen.push_back(at); });
  t.net.node(t.a).originate(t.make(t.addr_b));
  t.sim.run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], t.b);
}

TEST(Network, RenumberChangesOwnership) {
  Triangle t;
  EXPECT_TRUE(t.net.node(t.a).owns(t.addr_a));
  t.net.node(t.a).renumber({addr(2, 7, 1)});
  EXPECT_FALSE(t.net.node(t.a).owns(t.addr_a));
  EXPECT_TRUE(t.net.node(t.a).owns(addr(2, 7, 1)));
}

TEST(Network, SelfLinkRejected) {
  sim::Simulator sim;
  Network net(sim);
  NodeId a = net.add_node(1);
  EXPECT_THROW(net.connect(a, a, 1e6, sim::Duration::millis(1)), std::invalid_argument);
}

}  // namespace
}  // namespace tussle::net
