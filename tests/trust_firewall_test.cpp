#include "trust/firewall.hpp"

#include <gtest/gtest.h>

namespace tussle::trust {
namespace {

using net::Address;

struct Fixture {
  IdentityFramework framework;
  ReputationSystem reputation;
  std::map<Address, Identity> bindings;

  Address good_addr{.provider = 1, .subscriber = 1, .host = 1};
  Address bad_addr{.provider = 2, .subscriber = 1, .host = 1};
  Address anon_addr{.provider = 3, .subscriber = 1, .host = 1};
  Address unknown_addr{.provider = 4, .subscriber = 1, .host = 1};

  Fixture() {
    bindings[good_addr] = Identity{IdentityScheme::kPseudonymous, "goodguy", ""};
    bindings[bad_addr] = Identity{IdentityScheme::kPseudonymous, "badguy", ""};
    bindings[anon_addr] = Identity{};  // explicit anonymity
    for (int i = 0; i < 10; ++i) {
      reputation.record("peer", "goodguy", true);
      reputation.record("peer", "badguy", false);
    }
  }

  IdentityResolver resolver() {
    return [this](const Address& a) -> std::optional<Identity> {
      auto it = bindings.find(a);
      if (it == bindings.end()) return std::nullopt;
      return it->second;
    };
  }

  net::Packet from(const Address& a) {
    net::Packet p;
    p.src = a;
    p.dst = Address{.provider = 9, .subscriber = 1, .host = 1};
    return p;
  }

  TrustFirewall make(TrustFirewallConfig cfg) {
    return TrustFirewall("fw", cfg, framework, reputation, resolver());
  }
};

TEST(TrustFirewall, AcceptsReputable) {
  Fixture f;
  auto fw = f.make({});
  EXPECT_EQ(fw.decide(f.from(f.good_addr)).action, net::FilterAction::kAccept);
}

TEST(TrustFirewall, DropsLowReputation) {
  Fixture f;
  auto fw = f.make({});
  auto d = fw.decide(f.from(f.bad_addr));
  EXPECT_EQ(d.action, net::FilterAction::kDrop);
  EXPECT_EQ(d.reason, "fw:low-reputation");
}

TEST(TrustFirewall, AnonymousAcceptedByDefaultButRefusableByPolicy) {
  Fixture f;
  auto open = f.make({});
  EXPECT_EQ(open.decide(f.from(f.anon_addr)).action, net::FilterAction::kAccept);

  TrustFirewallConfig strict;
  strict.require_identified = true;
  auto fw = f.make(strict);
  auto d = fw.decide(f.from(f.anon_addr));
  EXPECT_EQ(d.action, net::FilterAction::kDrop);
  EXPECT_EQ(d.reason, "fw:anonymous-refused");
}

TEST(TrustFirewall, UnknownSenderPolicyKnob) {
  Fixture f;
  auto open = f.make({});
  EXPECT_EQ(open.decide(f.from(f.unknown_addr)).action, net::FilterAction::kAccept);
  TrustFirewallConfig strict;
  strict.accept_unknown = false;
  auto fw = f.make(strict);
  EXPECT_EQ(fw.decide(f.from(f.unknown_addr)).action, net::FilterAction::kDrop);
}

TEST(TrustFirewall, EndUserWhitelistOverridesReputation) {
  Fixture f;
  TrustFirewallConfig cfg;
  cfg.authority = PolicyAuthority::kEndUser;
  auto fw = f.make(cfg);
  fw.user_whitelist("badguy");
  EXPECT_EQ(fw.decide(f.from(f.bad_addr)).action, net::FilterAction::kAccept);
}

TEST(TrustFirewall, AdminFirewallIgnoresUserWhitelist) {
  // The governance tussle: same exception, different authority, different
  // outcome.
  Fixture f;
  TrustFirewallConfig cfg;
  cfg.authority = PolicyAuthority::kNetworkAdmin;
  auto fw = f.make(cfg);
  fw.user_whitelist("badguy");
  EXPECT_EQ(fw.decide(f.from(f.bad_addr)).action, net::FilterAction::kDrop);
}

TEST(TrustFirewall, FilterAdapterCarriesDisclosure) {
  Fixture f;
  TrustFirewallConfig cfg;
  cfg.disclosed = false;
  auto fw = f.make(cfg);
  auto filter = fw.as_filter();
  EXPECT_EQ(filter.name, "fw");
  EXPECT_FALSE(filter.disclosed);
  EXPECT_EQ(filter.fn(f.from(f.good_addr)).action, net::FilterAction::kAccept);
}

TEST(TrustFirewall, ReputationEvolutionReopensAccess) {
  // A previously bad actor that rebuilds reputation gets back in — the
  // firewall is trust-mediated, not a static blocklist.
  Fixture f;
  auto fw = f.make({});
  EXPECT_EQ(fw.decide(f.from(f.bad_addr)).action, net::FilterAction::kDrop);
  for (int i = 0; i < 40; ++i) f.reputation.record("peer", "badguy", true);
  EXPECT_EQ(fw.decide(f.from(f.bad_addr)).action, net::FilterAction::kAccept);
}

TEST(TrustFirewall, AuthorityNames) {
  EXPECT_EQ(to_string(PolicyAuthority::kEndUser), "end-user");
  EXPECT_EQ(to_string(PolicyAuthority::kNetworkAdmin), "network-admin");
  EXPECT_EQ(to_string(PolicyAuthority::kGovernment), "government");
}

}  // namespace
}  // namespace tussle::trust
