// Cross-module property tests: oracle comparisons and fuzz-style sweeps
// that don't belong to any single unit suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "econ/market.hpp"
#include "policy/expr.hpp"
#include "routing/path_vector.hpp"
#include "routing/source_route.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace tussle {
namespace {

// ---------------------------------------------------------------------------
// Yen's k-shortest-paths vs. brute-force enumeration of all simple paths.
// ---------------------------------------------------------------------------

void all_simple_paths(const routing::AsGraph& g, routing::AsId cur, routing::AsId to,
                      std::vector<routing::AsId>& stack, std::set<routing::AsId>& seen,
                      std::vector<std::vector<routing::AsId>>& out) {
  if (cur == to) {
    out.push_back(stack);
    return;
  }
  for (auto [nbr, rel] : g.neighbors(cur)) {
    (void)rel;
    if (seen.count(nbr)) continue;
    seen.insert(nbr);
    stack.push_back(nbr);
    all_simple_paths(g, nbr, to, stack, seen, out);
    stack.pop_back();
    seen.erase(nbr);
  }
}

class KShortestOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KShortestOracle, MatchesBruteForcePrefix) {
  sim::Rng rng(GetParam());
  // Small random graph so brute force stays tractable.
  routing::AsGraph g;
  const int n = 7;
  for (routing::AsId a = 1; a <= n; ++a) g.add_as(a);
  for (routing::AsId a = 1; a <= n; ++a) {
    for (routing::AsId b = a + 1; b <= n; ++b) {
      if (rng.bernoulli(0.45) && !g.relationship(a, b)) {
        if (rng.bernoulli(0.5)) {
          g.add_customer_provider(a, b);
        } else {
          g.add_peering(a, b);
        }
      }
    }
  }
  routing::SourceRouteBuilder builder(g);
  const routing::AsId from = 1, to = n;
  std::vector<std::vector<routing::AsId>> truth;
  std::vector<routing::AsId> stack{from};
  std::set<routing::AsId> seen{from};
  all_simple_paths(g, from, to, stack, seen, truth);
  std::stable_sort(truth.begin(), truth.end(),
                   [](const auto& a, const auto& b) {
                     if (a.size() != b.size()) return a.size() < b.size();
                     return a < b;
                   });

  auto yen = builder.k_shortest_paths(from, to, 5);
  ASSERT_EQ(yen.size(), std::min<std::size_t>(5, truth.size()));
  for (std::size_t i = 0; i < yen.size(); ++i) {
    // Lengths must match the true i-th shortest; the concrete path must be
    // one of the true paths of that length.
    EXPECT_EQ(yen[i].size(), truth[i].size()) << "rank " << i << " seed " << GetParam();
    EXPECT_NE(std::find(truth.begin(), truth.end(), yen[i]), truth.end());
  }
  // No duplicates.
  std::set<std::vector<routing::AsId>> uniq(yen.begin(), yen.end());
  EXPECT_EQ(uniq.size(), yen.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, KShortestOracle, ::testing::Values(3, 9, 27, 81, 243));

// ---------------------------------------------------------------------------
// EventQueue fuzz vs. a sorted-multiset oracle, with random cancellation.
// ---------------------------------------------------------------------------

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, MatchesSortedOracle) {
  sim::Rng rng(GetParam());
  sim::EventQueue q;
  // Oracle: multiset of (time, insertion-seq) for live events.
  std::vector<std::pair<std::int64_t, int>> live;
  std::vector<std::pair<sim::EventId, std::pair<std::int64_t, int>>> handles;
  int seq = 0;
  for (int op = 0; op < 800; ++op) {
    const double r = rng.uniform();
    if (r < 0.6 || q.empty()) {
      const std::int64_t t = rng.uniform_int(0, 50);
      auto id = q.push(sim::SimTime::nanos(t), [] {});
      live.emplace_back(t, seq);
      handles.emplace_back(id, std::make_pair(t, seq));
      ++seq;
    } else if (r < 0.75 && !handles.empty()) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(handles.size()) - 1));
      const bool cancelled = q.cancel(handles[idx].first);
      auto it = std::find(live.begin(), live.end(), handles[idx].second);
      EXPECT_EQ(cancelled, it != live.end());
      if (it != live.end()) live.erase(it);
      handles.erase(handles.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      auto popped = q.pop();
      auto it = std::min_element(live.begin(), live.end());
      ASSERT_NE(it, live.end());
      EXPECT_EQ(popped.time.as_nanos(), it->first);
      live.erase(it);
    }
    EXPECT_EQ(q.size(), live.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz, ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Policy-language fuzz: randomly generated well-typed expressions compile
// and evaluate without crashing; boolean results are stable across repeated
// evaluation (purity).
// ---------------------------------------------------------------------------

std::string gen_number_expr(sim::Rng& rng, int depth);
std::string gen_bool_expr(sim::Rng& rng, int depth);

std::string gen_number_expr(sim::Rng& rng, int depth) {
  if (depth <= 0 || rng.bernoulli(0.4)) {
    if (rng.bernoulli(0.5)) return std::to_string(rng.uniform_int(1, 99));
    return rng.bernoulli(0.5) ? "size" : "ttl";
  }
  static const char* ops[] = {" + ", " - ", " * "};
  return "(" + gen_number_expr(rng, depth - 1) +
         ops[rng.uniform_int(0, 2)] + gen_number_expr(rng, depth - 1) + ")";
}

std::string gen_bool_expr(sim::Rng& rng, int depth) {
  if (depth <= 0) {
    switch (rng.uniform_int(0, 3)) {
      case 0: return "encrypted";
      case 1: return "proto == 'web'";
      case 2: return "true";
      default: return "size > " + std::to_string(rng.uniform_int(0, 2000));
    }
  }
  switch (rng.uniform_int(0, 4)) {
    case 0: return "(" + gen_bool_expr(rng, depth - 1) + " and " +
                   gen_bool_expr(rng, depth - 1) + ")";
    case 1: return "(" + gen_bool_expr(rng, depth - 1) + " or " +
                   gen_bool_expr(rng, depth - 1) + ")";
    case 2: return "not " + gen_bool_expr(rng, depth - 1);
    case 3: return "(" + gen_number_expr(rng, depth - 1) + " <= " +
                   gen_number_expr(rng, depth - 1) + ")";
    default: return "proto in ['web', 'mail', 'p2p']";
  }
}

class PolicyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicyFuzz, GeneratedExpressionsCompileAndEvaluate) {
  sim::Rng rng(GetParam());
  policy::Ontology onto;
  onto.declare("size", policy::ValueType::kNumber);
  onto.declare("ttl", policy::ValueType::kNumber);
  onto.declare("encrypted", policy::ValueType::kBool);
  onto.declare("proto", policy::ValueType::kString);
  policy::Context ctx;
  ctx.set("size", 700.0);
  ctx.set("ttl", 64.0);
  ctx.set("encrypted", false);
  ctx.set("proto", "web");

  for (int i = 0; i < 200; ++i) {
    const std::string src = gen_bool_expr(rng, 4);
    policy::Expr e = policy::Expr::compile(src, onto);
    EXPECT_EQ(e.result_type(), policy::ValueType::kBool) << src;
    const bool first = e.test(ctx);
    EXPECT_EQ(e.test(ctx), first) << "impure evaluation: " << src;
    for (const auto& attr : e.referenced_attributes()) {
      EXPECT_TRUE(onto.defines(attr)) << attr;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyFuzz, ::testing::Values(5, 50, 500));

// ---------------------------------------------------------------------------
// Path-vector structural invariants on random hierarchies.
// ---------------------------------------------------------------------------

class PathVectorInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathVectorInvariants, RoutesAreInternallyConsistent) {
  sim::Rng rng(GetParam());
  auto h = routing::make_hierarchy(rng, 2, 6, 14);
  routing::PathVector pv(h.graph);
  for (routing::AsId dest : {h.stubs[0], h.tier2[0]}) {
    auto out = pv.compute(dest);
    ASSERT_TRUE(out.converged);
    for (const auto& [src, route] : out.routes) {
      ASSERT_TRUE(route.valid());
      EXPECT_EQ(route.as_path.front(), src);
      EXPECT_EQ(route.as_path.back(), dest);
      if (route.as_path.size() > 1) {
        EXPECT_EQ(route.as_path[1], route.next_hop);
      }
      // Consecutive path elements must share an edge; no repeats.
      std::set<routing::AsId> uniq(route.as_path.begin(), route.as_path.end());
      EXPECT_EQ(uniq.size(), route.as_path.size());
      for (std::size_t i = 0; i + 1 < route.as_path.size(); ++i) {
        EXPECT_TRUE(
            h.graph.relationship(route.as_path[i], route.as_path[i + 1]).has_value());
      }
      // Route consistency (the path actually exists hop by hop): the next
      // hop's route must be the tail of mine under converged path vector.
      if (route.as_path.size() > 1) {
        const auto& nh = out.routes.at(route.next_hop);
        std::vector<routing::AsId> tail(route.as_path.begin() + 1, route.as_path.end());
        EXPECT_EQ(nh.as_path, tail);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathVectorInvariants, ::testing::Values(4, 8, 15, 16, 23, 42));

// ---------------------------------------------------------------------------
// Market invariants under random configurations.
// ---------------------------------------------------------------------------

class MarketInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MarketInvariants, AccountingAlwaysConsistent) {
  sim::Rng seed_rng(GetParam());
  econ::MarketConfig cfg;
  cfg.consumers = 100 + static_cast<std::size_t>(seed_rng.uniform_int(0, 300));
  cfg.switching_cost = seed_rng.uniform(0, 5);
  cfg.periods = 150;
  const auto n_providers = static_cast<std::size_t>(seed_rng.uniform_int(1, 6));
  std::vector<econ::ProviderConfig> providers(n_providers);
  for (std::size_t i = 0; i < n_providers; ++i) {
    providers[i].name = "p" + std::to_string(i);
    providers[i].marginal_cost = seed_rng.uniform(1, 4);
    providers[i].initial_price = providers[i].marginal_cost + seed_rng.uniform(0, 5);
  }
  sim::Rng rng(GetParam() * 7 + 1);
  econ::Market m(cfg, providers, rng);
  auto r = m.run();

  double share_total = 0;
  for (double s : r.final_shares) {
    EXPECT_GE(s, 0.0);
    share_total += s;
  }
  EXPECT_LE(share_total, static_cast<double>(cfg.consumers) + 0.5);
  for (std::size_t i = 0; i < r.final_prices.size(); ++i) {
    EXPECT_GE(r.final_prices[i], providers[i].marginal_cost - 1e-9);
  }
  EXPECT_GE(r.subscribed_fraction, 0.0);
  EXPECT_LE(r.subscribed_fraction, 1.0);
  if (share_total > 0) {
    EXPECT_LE(r.hhi, 1.0 + 1e-12);
    EXPECT_GE(r.hhi, 1.0 / static_cast<double>(n_providers) - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarketInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace tussle
