#include <gtest/gtest.h>

#include "apps/attack.hpp"
#include "apps/p2p.hpp"
#include "apps/voip.hpp"
#include "net/topology.hpp"
#include "routing/link_state.hpp"

namespace tussle::apps {
namespace {

using net::Address;
using net::NodeId;

struct Fixture {
  sim::Simulator sim{11};
  net::Network net{sim};
  std::vector<NodeId> ids;
  std::vector<Address> addrs;
  std::vector<std::shared_ptr<AppMux>> muxes;

  explicit Fixture(std::size_t leaves = 6) {
    ids = net::build_star(net, leaves, 1, net::LinkSpec{});
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Address a{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
      net.node(ids[i]).add_address(a);
      addrs.push_back(a);
      muxes.push_back(AppMux::install(net.node(ids[i])));
    }
    routing::LinkState ls(net);
    ls.install_routes(ids);
  }
};

TEST(P2p, ShareAndFetch) {
  Fixture f;
  P2pIndex index;
  P2pPeer seeder(f.net, f.ids[1], f.addrs[1], index, f.muxes[1]);
  P2pPeer leecher(f.net, f.ids[2], f.addrs[2], index, f.muxes[2]);
  seeder.share("song.mp3");
  EXPECT_EQ(index.catalog_size(), 1u);
  auto holder = leecher.fetch("song.mp3");
  ASSERT_TRUE(holder.has_value());
  EXPECT_EQ(*holder, f.addrs[1]);
  f.sim.run();
  EXPECT_TRUE(leecher.has("song.mp3"));
  EXPECT_EQ(seeder.uploads(), 1u);
  EXPECT_EQ(leecher.downloads(), 1u);
}

TEST(P2p, DownloaderBecomesHolderMutualAid) {
  Fixture f;
  P2pIndex index;
  P2pPeer seeder(f.net, f.ids[1], f.addrs[1], index, f.muxes[1]);
  P2pPeer a(f.net, f.ids[2], f.addrs[2], index, f.muxes[2]);
  seeder.share("song.mp3");
  a.fetch("song.mp3");
  f.sim.run();
  EXPECT_EQ(index.holders("song.mp3").size(), 2u);  // seeder + a
}

TEST(P2p, LeastLoadedHolderSpreadsUploads) {
  Fixture f;
  P2pIndex index;
  P2pPeer s1(f.net, f.ids[1], f.addrs[1], index, f.muxes[1]);
  P2pPeer s2(f.net, f.ids[2], f.addrs[2], index, f.muxes[2]);
  s1.share("x");
  s2.share("x");
  index.record_contribution(f.addrs[1], 1'000'000);  // s1 already carried a lot
  P2pPeer leecher(f.net, f.ids[3], f.addrs[3], index, f.muxes[3]);
  auto holder = leecher.fetch("x");
  ASSERT_TRUE(holder.has_value());
  EXPECT_EQ(*holder, f.addrs[2]);
}

TEST(P2p, InjunctionEmptiesTheIndexButNotTheLibraries) {
  // The rights-holder tussle hits the *index* (Napster), not the copies.
  Fixture f;
  P2pIndex index;
  P2pPeer seeder(f.net, f.ids[1], f.addrs[1], index, f.muxes[1]);
  seeder.share("song.mp3");
  index.unpublish_all("song.mp3");
  P2pPeer leecher(f.net, f.ids[2], f.addrs[2], index, f.muxes[2]);
  EXPECT_FALSE(leecher.fetch("song.mp3").has_value());
  EXPECT_TRUE(seeder.has("song.mp3"));  // the content did not disappear
}

TEST(P2p, StaleIndexEntryIgnoredByNonHolder) {
  Fixture f;
  P2pIndex index;
  P2pPeer liar(f.net, f.ids[1], f.addrs[1], index, f.muxes[1]);
  index.publish("ghost", f.addrs[1]);  // listed but not actually held
  P2pPeer leecher(f.net, f.ids[2], f.addrs[2], index, f.muxes[2]);
  leecher.fetch("ghost");
  f.sim.run();
  EXPECT_FALSE(leecher.has("ghost"));
  EXPECT_EQ(liar.uploads(), 0u);
}

TEST(Voip, CleanNetworkScoresHigh) {
  Fixture f;
  VoipSession call(f.net, f.ids[1], f.addrs[1], f.addrs[2], net::ServiceClass::kPremium);
  VoipSession::attach_receiver(f.muxes[2], call);
  call.start(200, sim::Duration::millis(20));
  f.sim.run();
  EXPECT_EQ(call.frames_received(), 200u);
  EXPECT_DOUBLE_EQ(call.loss_rate(), 0.0);
  EXPECT_GT(call.mos(), 4.0);
}

TEST(Voip, LossTanksTheScore) {
  Fixture f;
  // Random filter drops half the voice frames at the hub.
  f.net.node(f.ids[0]).add_filter(net::PacketFilter{
      .name = "lossy",
      .disclosed = true,
      .fn = [&f](const net::Packet& p) {
        if (p.proto == net::AppProto::kVoip && f.sim.rng().bernoulli(0.5)) {
          return net::FilterDecision::drop("loss");
        }
        return net::FilterDecision::accept();
      }});
  VoipSession call(f.net, f.ids[1], f.addrs[1], f.addrs[2], net::ServiceClass::kBestEffort);
  VoipSession::attach_receiver(f.muxes[2], call);
  call.start(200, sim::Duration::millis(20));
  f.sim.run();
  EXPECT_GT(call.loss_rate(), 0.3);
  EXPECT_LT(call.mos(), 2.0);
}

TEST(Voip, PremiumBeatsBestEffortUnderCongestion) {
  // Two calls share a slow, priority-queued uplink while background junk
  // floods the best-effort class.
  sim::Simulator sim{13};
  net::Network net(sim);
  NodeId a = net.add_node(1), r = net.add_node(1), b = net.add_node(1);
  net.connect(a, r, 2e6, sim::Duration::millis(2), net::QueueKind::kPriority, 20);
  net.connect(r, b, 50e6, sim::Duration::millis(2));
  Address addr_a{.provider = 1, .subscriber = 1, .host = 1};
  Address addr_b{.provider = 1, .subscriber = 2, .host = 1};
  net.node(a).add_address(addr_a);
  net.node(b).add_address(addr_b);
  net.node(a).forwarding().set_default_route(0);
  net.node(r).forwarding().set_prefix_route(prefix_of(addr_a), 0);
  net.node(r).forwarding().set_prefix_route(prefix_of(addr_b), 1);
  net.node(b).forwarding().set_default_route(0);
  auto mux_b = AppMux::install(net.node(b));

  VoipSession premium(net, a, addr_a, addr_b, net::ServiceClass::kPremium);
  VoipSession best(net, a, addr_a, addr_b, net::ServiceClass::kBestEffort);
  // Both can't attach to one mux (same proto) — run them sequentially.
  VoipSession::attach_receiver(mux_b, premium);
  premium.start(100, sim::Duration::millis(10));
  // Background flood from a in the best-effort class.
  for (int i = 0; i < 400; ++i) {
    sim.schedule(sim::Duration::millis(2) * static_cast<double>(i), [&net, a, addr_a, addr_b]() {
      net::Packet junk;
      junk.src = addr_a;
      junk.dst = addr_b;
      junk.proto = net::AppProto::kUnknown;
      junk.size_bytes = 1500;
      net.node(a).originate(std::move(junk));
    });
  }
  sim.run();
  const double premium_mos = premium.mos();

  VoipSession::attach_receiver(mux_b, best);
  best.start(100, sim::Duration::millis(10));
  for (int i = 0; i < 400; ++i) {
    sim.schedule(sim::Duration::millis(2) * static_cast<double>(i), [&net, a, addr_a, addr_b]() {
      net::Packet junk;
      junk.src = addr_a;
      junk.dst = addr_b;
      junk.proto = net::AppProto::kUnknown;
      junk.size_bytes = 1500;
      net.node(a).originate(std::move(junk));
    });
  }
  sim.run();
  EXPECT_GT(premium_mos, best.mos());
  EXPECT_GT(premium_mos, 3.5);
}

TEST(Attack, FloodOverwhelmsVictimLink) {
  Fixture f;
  DosFlooder flood(f.net, {f.ids[1], f.ids[2], f.ids[3]}, f.addrs[4]);
  flood.launch(300, sim::Duration::micros(100));
  f.sim.run();
  EXPECT_EQ(flood.packets_launched(), 900u);
  EXPECT_GT(f.net.counters().dropped_queue.value(), 0);
}

TEST(Attack, SpoofedFloodHasGarbageSources) {
  Fixture f;
  int spoofed_seen = 0;
  f.net.set_delivery_observer([&](const net::Packet& p, NodeId) {
    if (p.payload_tag == "flood" && p.src.provider != 1) ++spoofed_seen;
  });
  DosFlooder flood(f.net, {f.ids[1]}, f.addrs[4]);
  flood.launch(50, sim::Duration::millis(1), /*spoof=*/true);
  f.sim.run();
  EXPECT_GT(spoofed_seen, 40);
}

TEST(Attack, ScannerCountsProbes) {
  Fixture f;
  Scanner s(f.net, f.ids[1], f.addrs[1]);
  s.probe({f.addrs[2], f.addrs[3], f.addrs[4]});
  f.sim.run();
  EXPECT_EQ(s.probes_sent(), 3u);
  EXPECT_EQ(f.net.counters().delivered.value(), 3);
}

}  // namespace
}  // namespace tussle::apps
