#include "net/forwarding.hpp"

#include <gtest/gtest.h>

namespace tussle::net {
namespace {

TEST(ForwardingTable, EmptyHasNoRoute) {
  ForwardingTable t;
  EXPECT_FALSE(t.lookup(Address{.provider = 1, .subscriber = 1, .host = 1}).has_value());
}

TEST(ForwardingTable, ExactPrefixWins) {
  ForwardingTable t;
  t.set_as_route(1, 5);
  t.set_prefix_route(Prefix{1, 2, false}, 9);
  Address a{.provider = 1, .subscriber = 2, .host = 7};
  EXPECT_EQ(t.lookup(a), 9);
  Address other{.provider = 1, .subscriber = 3, .host = 7};
  EXPECT_EQ(t.lookup(other), 5);  // falls back to the AS route
}

TEST(ForwardingTable, DefaultRouteAsLastResort) {
  ForwardingTable t;
  t.set_default_route(2);
  EXPECT_EQ(t.lookup(Address{.provider = 42, .subscriber = 0, .host = 0}), 2);
  EXPECT_EQ(t.lookup_as(42), 2);
}

TEST(ForwardingTable, PortableAddressNeedsExplicitPrefix) {
  // A portable prefix is not aggregatable under its nominal provider: the
  // lookup must not use the AS route, because the owner may have moved.
  ForwardingTable t;
  t.set_as_route(1, 5);
  Address portable{.provider = 1, .subscriber = 2, .host = 3, .portable = true};
  EXPECT_FALSE(t.lookup(portable).has_value());
  t.set_prefix_route(Prefix{1, 2, true}, 8);
  EXPECT_EQ(t.lookup(portable), 8);
}

TEST(ForwardingTable, EraseRemovesEntry) {
  ForwardingTable t;
  t.set_prefix_route(Prefix{1, 1, false}, 3);
  EXPECT_EQ(t.prefix_entries(), 1u);
  t.erase_prefix_route(Prefix{1, 1, false});
  EXPECT_EQ(t.prefix_entries(), 0u);
}

TEST(ForwardingTable, TableSizeCountsPrefixes) {
  // Core-table bloat metric used by experiment E1.
  ForwardingTable t;
  for (std::uint32_t s = 0; s < 100; ++s) t.set_prefix_route(Prefix{1, s, true}, 1);
  EXPECT_EQ(t.prefix_entries(), 100u);
  t.clear();
  EXPECT_EQ(t.prefix_entries(), 0u);
}

TEST(ForwardingTable, LookupAsDistinctFromPrefixPlane) {
  ForwardingTable t;
  t.set_as_route(7, 4);
  EXPECT_EQ(t.lookup_as(7), 4);
  EXPECT_FALSE(t.lookup_as(8).has_value());
  EXPECT_EQ(t.as_entries(), 1u);
}

}  // namespace
}  // namespace tussle::net
