#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tussle::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(SimTime::millis(30), [&] { fired.push_back(3); });
  q.push(SimTime::millis(10), [&] { fired.push_back(1); });
  q.push(SimTime::millis(20), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  const SimTime t = SimTime::millis(5);
  for (int i = 0; i < 10; ++i) q.push(t, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PopReportsScheduledTime) {
  EventQueue q;
  q.push(SimTime::millis(7), [] {});
  EXPECT_EQ(q.next_time(), SimTime::millis(7));
  auto popped = q.pop();
  EXPECT_EQ(popped.time, SimTime::millis(7));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  EventId id = q.push(SimTime::millis(1), [&] { ++fired; });
  q.push(SimTime::millis(2), [&] { fired += 10; });
  EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, 10);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  EventId id = q.push(SimTime::millis(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{12345}));
}

TEST(EventQueue, CancelledHeadDoesNotBlockNext) {
  EventQueue q;
  int fired = 0;
  EventId head = q.push(SimTime::millis(1), [&] { fired = 1; });
  q.push(SimTime::millis(2), [&] { fired = 2; });
  q.cancel(head);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.next_time(), SimTime::millis(2));
  q.pop().action();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeExcludesCancelled) {
  EventQueue q;
  EventId a = q.push(SimTime::millis(1), [] {});
  q.push(SimTime::millis(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ManyEventsStaySorted) {
  EventQueue q;
  // Adversarial insertion order: descending times.
  for (int i = 999; i >= 0; --i) q.push(SimTime::micros(i), [] {});
  SimTime prev = SimTime::zero();
  while (!q.empty()) {
    auto p = q.pop();
    EXPECT_GE(p.time, prev);
    prev = p.time;
  }
}

}  // namespace
}  // namespace tussle::sim
