#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tussle::sim {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, MeanAndVariance) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.observe(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(Summary, SingleObservationHasZeroVariance) {
  Summary s;
  s.observe(3.3);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.3);
}

TEST(Summary, MergeMatchesPooledComputation) {
  Summary a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).observe(x);
    all.observe(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmptyIsIdentity) {
  Summary a, empty;
  a.observe(1.0);
  a.observe(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  Summary b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Histogram, Quantiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.observe(i);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ObserveAfterQuantileStillCorrect) {
  Histogram h;
  h.observe(5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  h.observe(1);
  h.observe(9);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
}

TEST(TimeWeighted, ConstantSignal) {
  TimeWeighted tw;
  tw.set(SimTime::zero(), 4.0);
  EXPECT_DOUBLE_EQ(tw.average(SimTime::seconds(10)), 4.0);
}

TEST(TimeWeighted, StepSignal) {
  TimeWeighted tw;
  tw.set(SimTime::zero(), 0.0);
  tw.set(SimTime::seconds(5), 10.0);  // 0 for 5s, then 10 for 5s
  EXPECT_DOUBLE_EQ(tw.average(SimTime::seconds(10)), 5.0);
  EXPECT_DOUBLE_EQ(tw.current(), 10.0);
}

// value_at is the time-series recorder's non-destructive read: the running
// average up to `now` without adding an observation, clamped so a sampler
// asking about a time before the last set() never sees a negative span.
TEST(TimeWeighted, ValueAtReadsMidRunWithoutMutating) {
  TimeWeighted tw;
  tw.set(SimTime::zero(), 0.0);
  tw.set(SimTime::seconds(5), 10.0);
  EXPECT_DOUBLE_EQ(tw.value_at(SimTime::seconds(10)), 5.0);
  EXPECT_DOUBLE_EQ(tw.value_at(SimTime::seconds(10)), 5.0);  // repeatable
  EXPECT_DOUBLE_EQ(tw.value_at(SimTime::seconds(2)), 0.0);   // clamped to last set()
  EXPECT_DOUBLE_EQ(tw.average(SimTime::seconds(10)), 5.0);   // state untouched
}

// Regression: a signal first observed mid-run must be averaged over its own
// lifetime, not since t=0 — the old code diluted the average with an
// imaginary [0, first-set) span of value 0.
TEST(TimeWeighted, SignalStartingMidRunAveragesOverOwnLifetime) {
  TimeWeighted tw;
  tw.set(SimTime::seconds(100), 8.0);
  EXPECT_DOUBLE_EQ(tw.average(SimTime::seconds(110)), 8.0);

  TimeWeighted step;
  step.set(SimTime::seconds(100), 0.0);
  step.set(SimTime::seconds(105), 10.0);
  EXPECT_DOUBLE_EQ(step.average(SimTime::seconds(110)), 5.0);
}

TEST(TimeWeighted, NoObservationsAveragesToZero) {
  TimeWeighted tw;
  EXPECT_DOUBLE_EQ(tw.average(SimTime::seconds(5)), 0.0);
}

// Regression: updating an existing key repeatedly must not re-scan the
// ordered vector (it used to be O(n) per update). Behaviourally we can only
// check the semantics; the complexity is covered by bench_micro.
TEST(MetricSet, HotKeyUpdateKeepsOrderAndLatestValue) {
  MetricSet m;
  m.put("first", 1);
  m.put("hot", 0);
  m.put("last", 3);
  for (int i = 1; i <= 1000; ++i) m.put("hot", static_cast<double>(i));
  ASSERT_EQ(m.items().size(), 3u);
  EXPECT_EQ(m.items()[0].first, "first");
  EXPECT_EQ(m.items()[1].first, "hot");
  EXPECT_EQ(m.items()[2].first, "last");
  EXPECT_DOUBLE_EQ(m.get("hot"), 1000.0);
}

TEST(MetricSet, PreservesInsertionOrderAndUpdates) {
  MetricSet m;
  m.put("b", 2);
  m.put("a", 1);
  m.put("b", 3);
  ASSERT_EQ(m.items().size(), 2u);
  EXPECT_EQ(m.items()[0].first, "b");
  EXPECT_DOUBLE_EQ(m.items()[0].second, 3.0);
  EXPECT_DOUBLE_EQ(m.get("a"), 1.0);
  EXPECT_DOUBLE_EQ(m.get("missing", -1.0), -1.0);
  EXPECT_TRUE(m.contains("a"));
  EXPECT_FALSE(m.contains("zzz"));
}

}  // namespace
}  // namespace tussle::sim
