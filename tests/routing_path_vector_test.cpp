#include "routing/path_vector.hpp"

#include <gtest/gtest.h>

namespace tussle::routing {
namespace {

// Same canonical topology as the AsGraph tests.
AsGraph canonical() {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_customer_provider(3, 1);
  g.add_customer_provider(4, 1);
  g.add_customer_provider(5, 2);
  g.add_customer_provider(6, 3);
  g.add_customer_provider(7, 4);
  g.add_customer_provider(7, 5);
  g.add_as(8);
  g.add_peering(7, 8);
  return g;
}

TEST(PathVector, ConvergesOnCanonicalTopology) {
  AsGraph g = canonical();
  PathVector pv(g);
  auto out = pv.compute(6);
  EXPECT_TRUE(out.converged);
  EXPECT_LT(out.rounds, 20);
}

TEST(PathVector, TransitCustomersReachAStubDestination) {
  AsGraph g = canonical();
  PathVector pv(g);
  auto out = pv.compute(6);
  for (AsId a : g.ases()) {
    if (a == 8) continue;  // 8 buys transit from nobody; see the peer test
    ASSERT_TRUE(out.routes.count(a)) << "AS " << a << " has no route to 6";
    EXPECT_EQ(out.routes.at(a).as_path.back(), AsId{6});
    EXPECT_EQ(out.routes.at(a).as_path.front(), a);
  }
}

TEST(PathVector, AllPathsAreValleyFreeUnderGaoRexford) {
  AsGraph g = canonical();
  PathVector pv(g);
  for (AsId dest : g.ases()) {
    auto out = pv.compute(dest);
    for (const auto& [src, route] : out.routes) {
      (void)src;
      EXPECT_TRUE(g.valley_free(route.as_path))
          << "path to " << dest << " not valley-free";
    }
  }
}

TEST(PathVector, CustomerRoutePreferredOverPeerAndProvider) {
  // AS 1 can reach 7 via its customer 4 (1-4-7) or via peer 2 (1-2-5-7).
  // Gao–Rexford must choose the customer branch even at equal length.
  AsGraph g = canonical();
  PathVector pv(g);
  auto out = pv.compute(7);
  const auto& route1 = out.routes.at(1);
  ASSERT_EQ(route1.as_path.size(), 3u);
  EXPECT_EQ(route1.as_path[1], AsId{4});
}

TEST(PathVector, NoTransitThroughPeersForPeers) {
  // 8 peers only with 7. Routes learned by 7 from its providers must not be
  // exported to 8's... wait: they must NOT be; but 7's own route is.
  // Destination 6 is reachable from 7 only via providers, so 8 must have NO
  // route to 6 (7 will not give its peer free transit).
  AsGraph g = canonical();
  PathVector pv(g);
  auto out = pv.compute(6);
  EXPECT_TRUE(out.converged);
  EXPECT_EQ(out.routes.count(8), 0u);
}

TEST(PathVector, PeerReachesPeersOwnPrefix) {
  AsGraph g = canonical();
  PathVector pv(g);
  auto out = pv.compute(7);
  ASSERT_TRUE(out.routes.count(8));
  EXPECT_EQ(out.routes.at(8).as_path, (std::vector<AsId>{8, 7}));
}

TEST(PathVector, ShortestPathPolicyIgnoresBusiness) {
  // Under shortest-path-everyone-exports, 8 reaches 6 through the valley.
  AsGraph g = canonical();
  PathVector pv(g, PathVector::Policy::shortest_path());
  auto out = pv.compute(6);
  EXPECT_TRUE(out.converged);
  ASSERT_TRUE(out.routes.count(8));
  EXPECT_FALSE(g.valley_free(out.routes.at(8).as_path));
}

TEST(PathVector, UnknownDestinationYieldsNothing) {
  AsGraph g = canonical();
  PathVector pv(g);
  auto out = pv.compute(99);
  EXPECT_TRUE(out.routes.empty());
}

TEST(PathVector, BadGadgetDoesNotConverge) {
  // Classic dispute wheel: 1,2,3 around hub 0, each preferring the
  // counterclockwise neighbor's route over its direct route.
  AsGraph g;
  g.add_peering(0, 1);
  g.add_peering(0, 2);
  g.add_peering(0, 3);
  g.add_peering(1, 2);
  g.add_peering(2, 3);
  g.add_peering(3, 1);
  PathVector::Policy policy;
  policy.export_ok = [](AsId, Rel, Rel) { return true; };
  policy.local_pref = [](AsId self, Rel, const std::vector<AsId>& path) {
    // Prefer the 2-hop path through the next spoke (1 prefers via 2,
    // 2 prefers via 3, 3 prefers via 1) over the direct path.
    if (path.size() == 3) {
      const AsId via = path[1];
      if ((self == 1 && via == 2) || (self == 2 && via == 3) || (self == 3 && via == 1)) {
        return 500;
      }
    }
    if (path.size() == 2) return 100;  // direct
    return 10;
  };
  PathVector pv(g, policy);
  auto out = pv.compute(0, 64);
  EXPECT_FALSE(out.converged);
  EXPECT_EQ(out.rounds, 64);
}

TEST(PathVector, ComputeAllCoversAllDestinations) {
  AsGraph g = canonical();
  PathVector pv(g);
  auto all = pv.compute_all();
  EXPECT_EQ(all.size(), g.as_count());
  for (auto& [dest, out] : all) {
    (void)dest;
    EXPECT_TRUE(out.converged);
  }
}

TEST(PathVector, VisibilityLowerThanLinkState) {
  // §IV-C: a path-vector protocol makes it harder to see internal choices.
  // Each AS must infer strictly less than the full edge set.
  AsGraph g = canonical();
  PathVector pv(g);
  auto v = compare_visibility(g, pv);
  EXPECT_EQ(v.edges_total, 8u);
  EXPECT_GT(v.mean_edges_visible_pv, 0.0);
  EXPECT_LT(v.visibility_ratio, 1.0);
}

// Property sweep: Gao–Rexford converges on random hierarchies (the theorem
// this policy class is famous for), and all resulting paths are valley-free.
class GaoRexfordProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaoRexfordProperty, ConvergesAndStaysValleyFree) {
  sim::Rng rng(GetParam());
  auto h = make_hierarchy(rng, 3, 8, 15);
  PathVector pv(h.graph);
  // Check a sample of destinations (one from each tier).
  for (AsId dest : {h.tier1[0], h.tier2[0], h.stubs[0], h.stubs.back()}) {
    auto out = pv.compute(dest);
    EXPECT_TRUE(out.converged) << "dest " << dest << " seed " << GetParam();
    for (const auto& [src, route] : out.routes) {
      (void)src;
      EXPECT_TRUE(h.graph.valley_free(route.as_path));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaoRexfordProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace tussle::routing
