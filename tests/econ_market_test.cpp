#include "econ/market.hpp"

#include <gtest/gtest.h>

namespace tussle::econ {
namespace {

std::vector<ProviderConfig> providers(std::size_t n, double cost = 2.0) {
  std::vector<ProviderConfig> out;
  for (std::size_t i = 0; i < n; ++i) {
    ProviderConfig p;
    p.name = "p" + std::to_string(i);
    p.marginal_cost = cost;
    p.initial_price = 6.0;
    out.push_back(p);
  }
  return out;
}

TEST(Herfindahl, BasicProperties) {
  EXPECT_DOUBLE_EQ(herfindahl({}), 0.0);
  EXPECT_DOUBLE_EQ(herfindahl({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(herfindahl({5}), 1.0);                 // monopoly
  EXPECT_DOUBLE_EQ(herfindahl({1, 1}), 0.5);              // symmetric duopoly
  EXPECT_NEAR(herfindahl({1, 1, 1, 1}), 0.25, 1e-12);     // 1/n floor
  EXPECT_GT(herfindahl({9, 1}), herfindahl({5, 5}));      // concentration
}

TEST(Market, RequiresProviders) {
  sim::Rng rng(1);
  EXPECT_THROW(Market(MarketConfig{}, {}, rng), std::invalid_argument);
}

TEST(Market, MonopolistPricesNearWillingnessToPay) {
  sim::Rng rng(42);
  MarketConfig cfg;
  cfg.periods = 600;
  Market m(cfg, providers(1), rng);
  auto r = m.run();
  // wtp uniform [8,12]: monopolist climbs far above cost (2).
  EXPECT_GT(r.mean_price, 6.0);
  EXPECT_DOUBLE_EQ(r.hhi, 1.0);
}

TEST(Market, CompetitionDrivesPriceTowardCost) {
  sim::Rng rng(42);
  MarketConfig cfg;
  cfg.periods = 600;
  Market m(cfg, providers(5), rng);
  auto r = m.run();
  EXPECT_LT(r.mean_price, 4.5);  // near marginal cost 2 + adaptation noise
  EXPECT_LT(r.hhi, 0.5);
}

TEST(Market, MorePressureWithMoreProviders) {
  auto price_with = [](std::size_t n) {
    sim::Rng rng(7);
    MarketConfig cfg;
    cfg.periods = 600;
    Market m(cfg, providers(n), rng);
    return m.run().mean_price;
  };
  const double p1 = price_with(1);
  const double p4 = price_with(4);
  EXPECT_GT(p1, p4 + 1.0);
}

TEST(Market, SwitchingCostSoftensCompetition) {
  auto price_with = [](double s) {
    sim::Rng rng(11);
    MarketConfig cfg;
    cfg.periods = 600;
    cfg.switching_cost = s;
    Market m(cfg, providers(3), rng);
    return m.run().mean_price;
  };
  const double frictionless = price_with(0.0);
  const double locked = price_with(4.0);
  EXPECT_GT(locked, frictionless + 0.5);
}

TEST(Market, SwitchingHappensOnlyWhenWorthIt) {
  sim::Rng rng(13);
  MarketConfig cfg;
  cfg.periods = 300;
  cfg.switching_cost = 100.0;  // prohibitive
  Market m(cfg, providers(3), rng);
  auto r = m.run();
  // First subscription is free; after that, nobody can afford to move.
  EXPECT_LT(static_cast<double>(r.total_switches), 0.02 * 300 * 500);
}

TEST(Market, ConsumersSubscribeWhenPricedBelowWtp) {
  sim::Rng rng(17);
  MarketConfig cfg;
  cfg.periods = 400;
  Market m(cfg, providers(3), rng);
  auto r = m.run();
  EXPECT_GT(r.subscribed_fraction, 0.95);  // prices settle below wtp_lo
}

TEST(Market, SurplusHigherUnderCompetition) {
  auto surplus_with = [](std::size_t n) {
    sim::Rng rng(19);
    MarketConfig cfg;
    cfg.periods = 600;
    Market m(cfg, providers(n), rng);
    return m.run().consumer_surplus;
  };
  EXPECT_GT(surplus_with(4), surplus_with(1) + 1.0);
}

TEST(Market, PricesNeverBelowMarginalCost) {
  sim::Rng rng(23);
  MarketConfig cfg;
  cfg.periods = 500;
  Market m(cfg, providers(4, 3.0), rng);
  auto r = m.run();
  for (double p : r.final_prices) EXPECT_GE(p, 3.0);
}

TEST(Market, DeterministicPerSeed) {
  auto run_with = [](std::uint64_t seed) {
    sim::Rng rng(seed);
    MarketConfig cfg;
    cfg.periods = 200;
    Market m(cfg, providers(3), rng);
    return m.run();
  };
  auto a = run_with(5);
  auto b = run_with(5);
  EXPECT_EQ(a.mean_price, b.mean_price);
  EXPECT_EQ(a.final_prices, b.final_prices);
  EXPECT_EQ(a.total_switches, b.total_switches);
}

// Property sweep: HHI bounded by [1/n, 1] whenever anyone is subscribed.
class MarketHhi : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MarketHhi, WithinTheoreticalBounds) {
  sim::Rng rng(29);
  MarketConfig cfg;
  cfg.periods = 300;
  Market m(cfg, providers(GetParam()), rng);
  auto r = m.run();
  if (r.subscribed_fraction > 0) {
    EXPECT_LE(r.hhi, 1.0 + 1e-12);
    EXPECT_GE(r.hhi, 1.0 / static_cast<double>(GetParam()) - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(ProviderCounts, MarketHhi, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace tussle::econ
