#include "sim/profiler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace tussle::sim {
namespace {

TEST(LoopProfiler, AggregatesByTagCell) {
  LoopProfiler prof;
  TaskTag net{"net", "forward"};
  TaskTag econ{"econ", "step"};
  prof.record(net, 0.010);
  prof.record(net, 0.020);
  prof.record(econ, 0.005);
  prof.record(TaskTag{}, 0.001);

  EXPECT_EQ(prof.total_events(), 4u);
  EXPECT_NEAR(prof.total_wall_seconds(), 0.036, 1e-12);

  auto spots = prof.hotspots();
  ASSERT_EQ(spots.size(), 3u);
  EXPECT_EQ(spots[0].component, "net");
  EXPECT_EQ(spots[0].kind, "forward");
  EXPECT_EQ(spots[0].events, 2u);
  EXPECT_NEAR(spots[0].wall_seconds, 0.030, 1e-12);
  EXPECT_NEAR(spots[0].share, 0.030 / 0.036, 1e-9);
  EXPECT_EQ(spots[1].component, "econ");
  EXPECT_EQ(spots[2].component, "(untagged)");
}

TEST(LoopProfiler, TopKLimitsOutput) {
  LoopProfiler prof;
  prof.record(TaskTag{"a", "x"}, 3.0);
  prof.record(TaskTag{"b", "x"}, 2.0);
  prof.record(TaskTag{"c", "x"}, 1.0);
  auto top2 = prof.hotspots(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].component, "a");
  EXPECT_EQ(top2[1].component, "b");
}

TEST(LoopProfiler, ResetClears) {
  LoopProfiler prof;
  prof.record(TaskTag{"a", "x"}, 1.0);
  prof.reset();
  EXPECT_EQ(prof.total_events(), 0u);
  EXPECT_EQ(prof.total_wall_seconds(), 0.0);
  EXPECT_TRUE(prof.hotspots().empty());
}

TEST(LoopProfiler, JsonIsAnArrayOfCells) {
  LoopProfiler prof;
  EXPECT_EQ(prof.hotspots_json(), "[]");
  prof.record(TaskTag{"net", "forward"}, 0.5);
  const std::string js = prof.hotspots_json();
  EXPECT_NE(js.find("\"component\":\"net\""), std::string::npos);
  EXPECT_NE(js.find("\"kind\":\"forward\""), std::string::npos);
  EXPECT_NE(js.find("\"events\":1"), std::string::npos);
}

// Scripted scenario: the per-component event counts attributed by the
// simulator must match exactly what was scheduled under each tag.
TEST(SimulatorProfiling, CountsMatchScriptedScenario) {
  Simulator sim(7);
  LoopProfiler prof;
  sim.set_profiler(&prof);

  TaskTag alpha{"comp.alpha", "tick"};
  TaskTag beta{"comp.beta", "tock"};
  for (int i = 0; i < 10; ++i) {
    sim.schedule(Duration::millis(i + 1), alpha, [] {});
  }
  for (int i = 0; i < 4; ++i) {
    sim.schedule(Duration::millis(100 + i), beta, [] {});
  }
  sim.schedule(Duration::millis(200), [] {});  // untagged

  EXPECT_EQ(sim.run(), 15u);
  EXPECT_EQ(prof.total_events(), 15u);

  std::uint64_t alpha_events = 0, beta_events = 0, untagged = 0;
  for (const auto& spot : prof.hotspots()) {
    if (spot.component == "comp.alpha") alpha_events = spot.events;
    if (spot.component == "comp.beta") beta_events = spot.events;
    if (spot.component == "(untagged)") untagged = spot.events;
  }
  EXPECT_EQ(alpha_events, 10u);
  EXPECT_EQ(beta_events, 4u);
  EXPECT_EQ(untagged, 1u);
}

// Attaching observability must not change the event sequence: same seed,
// same schedule, with and without a profiler and heartbeat, executes the
// actions in the same order.
TEST(SimulatorProfiling, InstrumentationPreservesExecutionOrder) {
  auto trace_run = [](bool instrument) {
    Simulator sim(42);
    LoopProfiler prof;
    std::vector<int> order;
    if (instrument) {
      sim.set_profiler(&prof);
      sim.set_heartbeat(Duration::millis(1), [](const Simulator::Heartbeat&) {});
    }
    for (int i = 0; i < 50; ++i) {
      const auto jitter = Duration::micros(sim.rng().uniform_int(0, 1000));
      sim.schedule(jitter, TaskTag{"t", "e"}, [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(trace_run(false), trace_run(true));
}

TEST(SimulatorHeartbeat, FiresAtSimTimePeriod) {
  Simulator sim(1);
  std::vector<Simulator::Heartbeat> beats;
  sim.set_heartbeat(Duration::seconds(1),
                    [&beats](const Simulator::Heartbeat& hb) { beats.push_back(hb); });
  for (int i = 1; i <= 35; ++i) {
    sim.schedule(Duration::millis(100 * i), [] {});
  }
  sim.run();  // last event at t=3.5s → beats at 1s, 2s, 3s
  ASSERT_EQ(beats.size(), 3u);
  EXPECT_GE(beats[0].sim_now, SimTime::seconds(1));
  EXPECT_LT(beats[0].sim_now, SimTime::seconds(2));
  EXPECT_GT(beats[1].events_executed, beats[0].events_executed);
  EXPECT_EQ(beats[2].events_executed, 30u);  // events up to and incl. t=3s
}

TEST(WallClock, IsMonotonic) {
  const double a = wall_now_seconds();
  const double b = wall_now_seconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace tussle::sim
