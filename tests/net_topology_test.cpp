#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <queue>
#include <set>

namespace tussle::net {
namespace {

// BFS connectivity check over the built network.
bool connected(const Network& net) {
  if (net.node_count() == 0) return true;
  std::set<NodeId> seen{0};
  std::queue<NodeId> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    NodeId n = frontier.front();
    frontier.pop();
    for (auto [peer, iface] : net.neighbors(n)) {
      (void)iface;
      if (seen.insert(peer).second) frontier.push(peer);
    }
  }
  return seen.size() == net.node_count();
}

TEST(Topology, LineHasNMinusOneLinks) {
  sim::Simulator sim;
  Network net(sim);
  auto ids = build_line(net, 6, 1, LinkSpec{});
  EXPECT_EQ(ids.size(), 6u);
  EXPECT_EQ(net.link_count(), 5u);
  EXPECT_TRUE(connected(net));
  // Interior nodes have exactly two interfaces.
  EXPECT_EQ(net.node(ids[2]).interface_count(), 2u);
  EXPECT_EQ(net.node(ids[0]).interface_count(), 1u);
}

TEST(Topology, StarHubTouchesAllLeaves) {
  sim::Simulator sim;
  Network net(sim);
  auto ids = build_star(net, 8, 1, LinkSpec{});
  EXPECT_EQ(ids.size(), 9u);
  EXPECT_EQ(net.node(ids[0]).interface_count(), 8u);
  for (std::size_t i = 1; i < ids.size(); ++i)
    EXPECT_EQ(net.node(ids[i]).interface_count(), 1u);
  EXPECT_TRUE(connected(net));
}

TEST(Topology, DumbbellShape) {
  sim::Simulator sim;
  Network net(sim);
  LinkSpec edge;
  LinkSpec bottleneck;
  bottleneck.bandwidth_bps = 1e6;
  auto d = build_dumbbell(net, 4, edge, bottleneck);
  EXPECT_EQ(d.sources.size(), 4u);
  EXPECT_EQ(d.sinks.size(), 4u);
  EXPECT_TRUE(connected(net));
  EXPECT_DOUBLE_EQ(net.link(d.bottleneck).bandwidth_bps(), 1e6);
  // Left router: bottleneck + 4 sources.
  EXPECT_EQ(net.node(d.left_router).interface_count(), 5u);
}

TEST(Topology, RandomGraphIsConnected) {
  sim::Simulator sim;
  Network net(sim);
  sim::Rng rng(99);
  auto ids = build_random(net, 30, 1, rng, 0.4, 0.3, LinkSpec{});
  EXPECT_EQ(ids.size(), 30u);
  EXPECT_TRUE(connected(net));
  EXPECT_GE(net.link_count(), 29u);  // at least the spanning chain
}

TEST(Topology, RandomGraphDeterministicPerSeed) {
  auto count_links = [](std::uint64_t seed) {
    sim::Simulator sim;
    Network net(sim);
    sim::Rng rng(seed);
    build_random(net, 25, 1, rng, 0.5, 0.4, LinkSpec{});
    return net.link_count();
  };
  EXPECT_EQ(count_links(7), count_links(7));
}

TEST(Topology, LinkSpecApplied) {
  sim::Simulator sim;
  Network net(sim);
  LinkSpec spec;
  spec.bandwidth_bps = 42e6;
  spec.propagation = sim::Duration::millis(13);
  build_line(net, 2, 3, spec);
  EXPECT_DOUBLE_EQ(net.link(0).bandwidth_bps(), 42e6);
  EXPECT_EQ(net.link(0).propagation(), sim::Duration::millis(13));
  EXPECT_EQ(net.node(0).as(), 3u);
}

}  // namespace
}  // namespace tussle::net
