#include "apps/diagnostics.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "routing/link_state.hpp"

namespace tussle::apps {
namespace {

using net::Address;
using net::NodeId;

struct Fixture {
  sim::Simulator sim{19};
  net::Network net{sim};
  std::vector<NodeId> ids;
  std::vector<Address> addrs;
  std::vector<std::shared_ptr<AppMux>> muxes;

  Fixture() {
    ids = net::build_star(net, 3, 1, net::LinkSpec{});
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Address a{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
      net.node(ids[i]).add_address(a);
      addrs.push_back(a);
      muxes.push_back(AppMux::install(net.node(ids[i])));
    }
    routing::LinkState ls(net);
    ls.install_routes(ids);
    net.enable_fault_reporting(true);
  }
};

TEST(FaultProbe, CleanPathIsDelivered) {
  Fixture f;
  FaultProbe probe(f.net, f.ids[1], f.muxes[1], f.muxes[2]);
  auto d = probe.probe(f.addrs[1], f.addrs[2], net::AppProto::kWeb);
  EXPECT_EQ(d.outcome, FaultProbe::Outcome::kDelivered);
  EXPECT_TRUE(d.actionable());
}

TEST(FaultProbe, DisclosedFilterIsAttributed) {
  Fixture f;
  f.net.node(f.ids[0]).add_filter(net::PacketFilter{
      .name = "hub-fw",
      .disclosed = true,
      .fn = [](const net::Packet& p) {
        return p.observable_proto() == net::AppProto::kP2p
                   ? net::FilterDecision::drop("hub-fw:no-p2p")
                   : net::FilterDecision::accept();
      }});
  FaultProbe probe(f.net, f.ids[1], f.muxes[1], f.muxes[2]);
  auto d = probe.probe(f.addrs[1], f.addrs[2], net::AppProto::kP2p);
  EXPECT_EQ(d.outcome, FaultProbe::Outcome::kFilteredReported);
  EXPECT_EQ(d.reporting_node, f.ids[0]);
  EXPECT_EQ(d.reason, "hub-fw:no-p2p");
  EXPECT_TRUE(d.actionable());
}

TEST(FaultProbe, UndisclosedFilterIsSilentLoss) {
  // "Some devices that impair transparency may intentionally give no error
  // information" (§VI-A) — the probe detects loss but cannot attribute it.
  Fixture f;
  f.net.node(f.ids[0]).add_filter(net::PacketFilter{
      .name = "covert-censor",
      .disclosed = false,
      .fn = [](const net::Packet& p) {
        return p.observable_proto() == net::AppProto::kP2p
                   ? net::FilterDecision::drop("secret")
                   : net::FilterDecision::accept();
      }});
  FaultProbe probe(f.net, f.ids[1], f.muxes[1], f.muxes[2]);
  auto d = probe.probe(f.addrs[1], f.addrs[2], net::AppProto::kP2p);
  EXPECT_EQ(d.outcome, FaultProbe::Outcome::kSilentLoss);
  EXPECT_FALSE(d.actionable());
}

TEST(FaultProbe, ReportingOffMeansSilentEvenWhenDisclosed) {
  Fixture f;
  f.net.enable_fault_reporting(false);
  f.net.node(f.ids[0]).add_filter(net::PacketFilter{
      .name = "hub-fw",
      .disclosed = true,
      .fn = [](const net::Packet&) { return net::FilterDecision::drop("always"); }});
  FaultProbe probe(f.net, f.ids[1], f.muxes[1], f.muxes[2]);
  auto d = probe.probe(f.addrs[1], f.addrs[2], net::AppProto::kWeb);
  EXPECT_EQ(d.outcome, FaultProbe::Outcome::kSilentLoss);
}

TEST(FaultProbe, EncryptedProbeEvadesTheFilterItDiagnosed) {
  // The full tussle loop in two probes: diagnose, then counter-move.
  Fixture f;
  f.net.node(f.ids[0]).add_filter(net::PacketFilter{
      .name = "hub-fw",
      .disclosed = true,
      .fn = [](const net::Packet& p) {
        return p.observable_proto() == net::AppProto::kP2p
                   ? net::FilterDecision::drop("hub-fw:no-p2p")
                   : net::FilterDecision::accept();
      }});
  FaultProbe probe(f.net, f.ids[1], f.muxes[1], f.muxes[2]);
  auto before = probe.probe(f.addrs[1], f.addrs[2], net::AppProto::kP2p);
  EXPECT_EQ(before.outcome, FaultProbe::Outcome::kFilteredReported);
  auto after = probe.probe(f.addrs[1], f.addrs[2], net::AppProto::kP2p, /*encrypted=*/true);
  EXPECT_EQ(after.outcome, FaultProbe::Outcome::kDelivered);
}

TEST(FaultProbe, SequentialProbesIndependent) {
  Fixture f;
  FaultProbe probe(f.net, f.ids[1], f.muxes[1], f.muxes[2]);
  for (int i = 0; i < 5; ++i) {
    auto d = probe.probe(f.addrs[1], f.addrs[2], net::AppProto::kWeb);
    EXPECT_EQ(d.outcome, FaultProbe::Outcome::kDelivered) << "probe " << i;
  }
}

}  // namespace
}  // namespace tussle::apps
