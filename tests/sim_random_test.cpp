#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace tussle::sim {
namespace {

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(5);
  std::map<std::int64_t, int> counts;
  for (int i = 0; i < 6000; ++i) counts[r.uniform_int(1, 6)]++;
  ASSERT_EQ(counts.size(), 6u);
  EXPECT_EQ(counts.begin()->first, 1);
  EXPECT_EQ(counts.rbegin()->first, 6);
  for (auto& [v, c] : counts) EXPECT_GT(c, 800) << "value " << v;
}

TEST(Rng, UniformIntSingleton) {
  Rng r(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(42, 42), 42);
}

TEST(Rng, BernoulliRespectsP) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng r(19);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.pareto(1.5, 3.0), 3.0);
}

TEST(Rng, NormalMoments) {
  Rng r(23);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, WeightedPickProportional) {
  Rng r(29);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(w.size(), 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[r.weighted_pick(w)]++;
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, WeightedPickThrowsOnNoPositiveWeight) {
  Rng r(31);
  std::vector<double> w = {0.0, -1.0};
  EXPECT_THROW(r.weighted_pick(w), std::invalid_argument);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng base(37);
  Rng a = base.split();
  Rng b = base.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTable, RankOneIsMostPopular) {
  Rng r(43);
  ZipfTable z(100, 1.0);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 50000; ++i) counts[z.sample(r)]++;
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(ZipfTable, SamplesWithinSupport) {
  Rng r(47);
  ZipfTable z(7, 0.8);
  for (int i = 0; i < 5000; ++i) {
    const auto k = z.sample(r);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 7u);
  }
}

TEST(ZipfTable, ExponentZeroIsUniform) {
  Rng r(53);
  ZipfTable z(4, 0.0);
  std::vector<int> counts(5, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) counts[z.sample(r)]++;
  for (int k = 1; k <= 4; ++k)
    EXPECT_NEAR(counts[k] / static_cast<double>(n), 0.25, 0.01) << "rank " << k;
}

}  // namespace
}  // namespace tussle::sim
