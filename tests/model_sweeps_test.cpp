// Monotonicity and bounds sweeps over the domain models — the "does the
// model bend the right way everywhere" checks that back the experiment
// tables.
#include <gtest/gtest.h>

#include "apps/congestion.hpp"
#include "econ/investment.hpp"
#include "econ/open_access.hpp"
#include "names/workload.hpp"

namespace tussle {
namespace {

// --------------------------------------------------------------- econ ----

class RevenueSweep : public ::testing::TestWithParam<double> {};

TEST_P(RevenueSweep, DeploymentMonotoneInRevenue) {
  // Deployment should never decrease as QoS revenue rises past cost.
  auto deploy_at = [](double revenue) {
    econ::InvestmentConfig cfg;
    cfg.value_flow = true;
    cfg.qos_revenue = revenue;
    cfg.deploy_cost = 2.0;
    sim::Rng rng(3);
    return econ::run_investment(cfg, rng).final_deploy_fraction;
  };
  const double here = deploy_at(GetParam());
  const double above = deploy_at(GetParam() + 1.0);
  EXPECT_LE(here, above + 1e-9);
  EXPECT_GE(here, 0.0);
  EXPECT_LE(here, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Revenues, RevenueSweep, ::testing::Values(0.5, 1.5, 1.9, 2.1, 3.0));

TEST(InvestmentSweep, ThresholdSitsAtCost) {
  econ::InvestmentConfig below;
  below.value_flow = true;
  below.qos_revenue = 1.9;
  below.deploy_cost = 2.0;
  econ::InvestmentConfig above = below;
  above.qos_revenue = 2.1;
  sim::Rng r1(4), r2(4);
  EXPECT_DOUBLE_EQ(econ::run_investment(below, r1).final_deploy_fraction, 0.0);
  EXPECT_DOUBLE_EQ(econ::run_investment(above, r2).final_deploy_fraction, 1.0);
}

class IspCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IspCountSweep, OpenAccessPriceWeaklyFallsWithCompetition) {
  auto price_at = [](std::size_t k) {
    econ::BroadbandConfig cfg;
    cfg.regime = econ::AccessRegime::kOpenAccess;
    cfg.service_isps = k;
    cfg.periods = 300;
    sim::Rng rng(9);
    return econ::run_broadband(cfg, rng).market.mean_price;
  };
  // Compare k and 2k competitors; allow small adaptation noise.
  EXPECT_GE(price_at(GetParam()) + 0.4, price_at(GetParam() * 2));
}

INSTANTIATE_TEST_SUITE_P(Counts, IspCountSweep, ::testing::Values(2u, 3u, 5u));

// --------------------------------------------------------------- apps ----

class CongestionBounds : public ::testing::TestWithParam<std::tuple<double, bool>> {};

TEST_P(CongestionBounds, PhysicalInvariantsHold) {
  auto [frac, fq] = GetParam();
  apps::CongestionConfig cfg;
  cfg.aggressive_fraction = frac;
  cfg.fair_queueing = fq;
  auto r = apps::run_congestion(cfg);
  EXPECT_GE(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
  EXPECT_GE(r.loss_rate, 0.0);
  EXPECT_LE(r.loss_rate, 1.0 + 1e-9);
  const double fair = cfg.capacity / static_cast<double>(cfg.senders);
  if (fq) {
    // Fair queueing guarantees compliant flows at least ~their fair share
    // once AIMD stabilizes (tail average).
    if (frac < 1.0) {
      EXPECT_GT(r.compliant_goodput_mean, 0.6 * fair);
    }
  }
  // Nobody exceeds capacity single-handedly.
  EXPECT_LE(r.aggressive_goodput_mean, cfg.capacity + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, CongestionBounds,
                         ::testing::Combine(::testing::Values(0.0, 0.1, 0.5, 0.9),
                                            ::testing::Bool()));

// -------------------------------------------------------------- names ----

class DisputeSweep : public ::testing::TestWithParam<double> {};

TEST_P(DisputeSweep, ModularAlwaysDominatesEntangledOnSpillover) {
  names::WorkloadConfig cfg;
  cfg.disputed_fraction = GetParam();
  sim::Rng r1(13), r2(13);
  names::EntangledNameSystem e;
  names::ModularNameSystem m;
  auto re = names::run_workload(e, cfg, r1);
  auto rm = names::run_workload(m, cfg, r2);
  EXPECT_GE(re.spillover_rate(), rm.spillover_rate());
  EXPECT_DOUBLE_EQ(rm.spillover_rate(), 0.0);
  // Both designs suffer identical brand-plane damage: the tussle itself is
  // not suppressed, only contained (same seed → same workload).
  EXPECT_EQ(re.brand_failures, rm.brand_failures);
}

INSTANTIATE_TEST_SUITE_P(Rates, DisputeSweep, ::testing::Values(0.0, 0.05, 0.15, 0.3, 0.6));

}  // namespace
}  // namespace tussle
