// Causal span tracing: tracer mechanics (stack, registry, merge), the
// Chrome trace-event exporter (golden output + JSON validity), the text
// reports, and the end-to-end determinism contract — a network scenario run
// through the sweep engine must export byte-identical traces at any --jobs.
#include "sim/span.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "core/sweep.hpp"
#include "econ/value_flow.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"

namespace tussle::sim {
namespace {

// ------------------------------------------------------- tracer mechanics --

TEST(SpanTracer, BeginEndRecordsInterval) {
  SpanTracer t;
  const SpanId id = t.begin(SimTime::millis(1), "net.node", "hop", {{"node", 3}});
  EXPECT_EQ(id, 1u);
  t.end(id, SimTime::millis(4));
  ASSERT_EQ(t.size(), 1u);
  const Span& s = t.spans()[0];
  EXPECT_EQ(s.parent, kNoSpan);
  EXPECT_EQ(s.start, SimTime::millis(1));
  EXPECT_EQ(s.end, SimTime::millis(4));
  EXPECT_TRUE(s.closed);
  EXPECT_EQ(s.component, "net.node");
  EXPECT_EQ(s.name, "hop");
  ASSERT_EQ(s.attrs.size(), 1u);
  EXPECT_EQ(s.attrs[0].key, "node");
}

TEST(SpanTracer, IdsAreDenseCreationOrder) {
  SpanTracer t;
  EXPECT_EQ(t.begin(SimTime::zero(), "a", "x"), 1u);
  EXPECT_EQ(t.begin(SimTime::zero(), "a", "y"), 2u);
  EXPECT_EQ(t.instant(SimTime::zero(), "a", "z"), 3u);
}

TEST(SpanTracer, StackEstablishesParentage) {
  SpanTracer t;
  const SpanId outer = t.begin(SimTime::zero(), "a", "outer");
  t.push(outer);
  const SpanId inner = t.begin(SimTime::zero(), "a", "inner");
  t.pop();
  const SpanId sibling = t.begin(SimTime::zero(), "a", "sibling");
  EXPECT_EQ(t.spans()[inner - 1].parent, outer);
  EXPECT_EQ(t.spans()[sibling - 1].parent, kNoSpan);
}

TEST(SpanTracer, BeginUnderExplicitParent) {
  SpanTracer t;
  const SpanId a = t.begin(SimTime::zero(), "a", "a");
  const SpanId b = t.begin_under(a, SimTime::zero(), "a", "b");
  EXPECT_EQ(t.spans()[b - 1].parent, a);
}

TEST(SpanTracer, InstantIsClosedZeroLength) {
  SpanTracer t;
  const SpanId id = t.instant(SimTime::millis(2), "econ.ledger", "transfer");
  const Span& s = t.spans()[id - 1];
  EXPECT_TRUE(s.closed);
  EXPECT_EQ(s.start, s.end);
  // The no-time overload stamps the last observed sim time.
  const SpanId later = t.instant("econ.ledger", "transfer");
  EXPECT_EQ(t.spans()[later - 1].start, SimTime::millis(2));
}

TEST(SpanTracer, AnnotateAppendsAndToleratesBadIds) {
  SpanTracer t;
  const SpanId id = t.begin(SimTime::zero(), "a", "x");
  t.annotate(id, {"action", "accept"});
  ASSERT_EQ(t.spans()[0].attrs.size(), 1u);
  EXPECT_EQ(t.spans()[0].attrs[0].key, "action");
  t.annotate(kNoSpan, {"k", 1});  // no-op, must not crash
  t.annotate(99, {"k", 1});       // unknown id, same
  EXPECT_EQ(t.size(), 1u);
}

TEST(SpanTracer, FlowSpanCreatedOncePerFlow) {
  SpanTracer t;
  const SpanId f1 = t.flow_span(SimTime::millis(1), 7);
  EXPECT_EQ(t.flow_span(SimTime::millis(9), 7), f1);
  EXPECT_NE(t.flow_span(SimTime::millis(9), 8), f1);
  EXPECT_EQ(t.size(), 2u);
}

TEST(SpanTracer, PacketSpanLifecycle) {
  SpanTracer t;
  const SpanId p = t.packet_span(SimTime::millis(1), /*uid=*/42, /*flow=*/7);
  EXPECT_EQ(t.find_packet(42), p);
  const SpanId flow = t.spans()[p - 1].parent;
  ASSERT_NE(flow, kNoSpan);
  EXPECT_EQ(t.spans()[flow - 1].name, "flow");

  t.end_packet(42, SimTime::millis(5));
  EXPECT_EQ(t.find_packet(42), kNoSpan);  // registry entry retired
  EXPECT_TRUE(t.spans()[p - 1].closed);
  // The flow span stretches to cover its longest-lived packet.
  EXPECT_TRUE(t.spans()[flow - 1].closed);
  EXPECT_EQ(t.spans()[flow - 1].end, SimTime::millis(5));

  t.end_packet(42, SimTime::millis(9));  // double-end is a no-op
  EXPECT_EQ(t.spans()[p - 1].end, SimTime::millis(5));
}

TEST(SpanTracer, FlowZeroPacketsRootTheirOwnTree) {
  SpanTracer t;
  const SpanId p = t.packet_span(SimTime::zero(), /*uid=*/1, /*flow=*/0);
  EXPECT_EQ(t.spans()[p - 1].parent, kNoSpan);
  EXPECT_EQ(t.size(), 1u);  // no flow span materialized
}

TEST(SpanTracer, MergeRemapsIdsByFixedOffset) {
  SpanTracer a;
  a.begin(SimTime::millis(1), "a", "first");

  SpanTracer b;
  const SpanId outer = b.begin(SimTime::millis(2), "b", "outer");
  b.push(outer);
  b.begin(SimTime::millis(3), "b", "inner");
  b.pop();

  a.merge(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.spans()[1].id, 2u);
  EXPECT_EQ(a.spans()[1].parent, kNoSpan);  // b's root stays a root
  EXPECT_EQ(a.spans()[2].id, 3u);
  EXPECT_EQ(a.spans()[2].parent, 2u);  // b's parent link remapped
  EXPECT_EQ(a.last_time(), SimTime::millis(3));
}

TEST(ScopedSpan, NullTracerIsSafeAndInert) {
  ScopedSpan s(nullptr, SimTime::zero(), "a", "x", {{"k", 1}});
  EXPECT_EQ(s.id(), kNoSpan);
  s.annotate({"k", 2});  // must not crash
}

TEST(ScopedSpan, PushesPopsAndEndsAtLastTime) {
  SpanTracer t;
  {
    ScopedSpan outer(&t, SimTime::millis(1), "a", "outer");
    EXPECT_EQ(t.current(), outer.id());
    t.instant(SimTime::millis(4), "a", "tick");  // advances last_time()
  }
  EXPECT_EQ(t.current(), kNoSpan);
  EXPECT_TRUE(t.spans()[0].closed);
  EXPECT_EQ(t.spans()[0].end, SimTime::millis(4));
}

// ------------------------------------------------------------- exporters ---

/// The exact Chrome trace for a tiny hand-built flow: one flow span, one
/// packet, one filter decision. Pinning the bytes pins the contract the CI
/// artifact and the cross---jobs comparison both rely on.
TEST(ChromeTrace, GoldenSmallTree) {
  SpanTracer t;
  t.flow_span(SimTime::millis(1), 7);
  const SpanId p = t.packet_span(SimTime::millis(1), 42, 7);
  t.push(p);
  t.instant(SimTime::millis(2), "net.filter", "decision", {{"action", "accept"}});
  t.pop();
  t.end_packet(42, SimTime::millis(3));

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"flow 7\"}},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1000,\"dur\":2000,"
      "\"name\":\"flow\",\"cat\":\"net.flow\","
      "\"args\":{\"span\":1,\"parent\":0,\"flow\":7}},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1000,\"dur\":2000,"
      "\"name\":\"packet\",\"cat\":\"net.packet\","
      "\"args\":{\"span\":2,\"parent\":1,\"uid\":42,\"flow\":7}},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":2000,\"dur\":0,"
      "\"name\":\"decision\",\"cat\":\"net.filter\","
      "\"args\":{\"span\":3,\"parent\":2,\"action\":\"accept\"}}"
      "]}";
  EXPECT_EQ(to_chrome_trace(t.spans()), expected);
}

TEST(ChromeTrace, OpenSpansExportZeroLength) {
  SpanTracer t;
  t.begin(SimTime::millis(5), "a", "never-ended");
  const std::string json = to_chrome_trace(t.spans());
  EXPECT_NE(json.find("\"ts\":5000,\"dur\":0"), std::string::npos);
}

/// Minimal recursive-descent JSON acceptor: enough grammar to reject the
/// malformed output a buggy writer would produce (trailing commas, bare
/// keys, unbalanced braces). Returns true iff `s` is one valid JSON value.
class JsonChecker {
 public:
  static bool valid(const std::string& s) {
    JsonChecker c{s};
    c.ws();
    return c.value() && (c.ws(), c.i_ == s.size());
  }

 private:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool value() {
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }
  bool object() {
    ++i_;  // '{'
    ws();
    if (peek('}')) return true;
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (!eat(':')) return false;
      ws();
      if (!value()) return false;
      ws();
      if (peek('}')) return true;
      if (!eat(',')) return false;
    }
  }
  bool array() {
    ++i_;  // '['
    ws();
    if (peek(']')) return true;
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (peek(']')) return true;
      if (!eat(',')) return false;
    }
  }
  bool string() {
    if (!eat('"')) return false;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') ++i_;
      ++i_;
    }
    return eat('"');
  }
  bool number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    return i_ > start;
  }
  bool lit(std::string_view w) {
    if (s_.compare(i_, w.size(), w) != 0) return false;
    i_ += w.size();
    return true;
  }
  void ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) ++i_;
  }
  bool peek(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  bool eat(char c) { return peek(c); }

  const std::string& s_;
  std::size_t i_ = 0;
};

TEST(JsonChecker, SelfTest) {
  EXPECT_TRUE(JsonChecker::valid("{\"a\":[1,2.5,-3e2,\"s\",true,null],\"b\":{}}"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\":1,}"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\":}"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\":1"));
  EXPECT_FALSE(JsonChecker::valid("{a:1}"));
}

TEST(SpanTreeReport, IndentsByDepthAndShowsAttrs) {
  SpanTracer t;
  const SpanId p = t.packet_span(SimTime::millis(1), 42, 7);
  t.push(p);
  t.instant(SimTime::millis(2), "net.filter", "decision", {{"action", "drop"}});
  t.pop();
  t.end_packet(42, SimTime::millis(3));

  const std::string report = span_tree_report(t.spans());
  EXPECT_NE(report.find("[net.flow] flow"), std::string::npos);
  EXPECT_NE(report.find("\n  [net.packet] packet"), std::string::npos);
  EXPECT_NE(report.find("\n    [net.filter] decision"), std::string::npos);
  EXPECT_NE(report.find("action=drop"), std::string::npos);
}

TEST(ExplainFlow, UnknownFlowSaysSo) {
  SpanTracer t;
  EXPECT_EQ(explain_flow(t.spans(), 9), "no spans recorded for flow 9\n");
}

// ------------------------------------------ end-to-end network scenario ----

using net::Address;
using net::AsId;
using net::Packet;

Address addr(AsId as, std::uint32_t sub, std::uint32_t host) {
  return Address{.provider = as, .subscriber = sub, .host = host};
}

/// Two hosts with a router in between, span-traced: the smallest topology
/// that exercises flow/packet spans, hop spans, a filter decision, and a
/// ledger transfer hanging off it.
struct TracedTriangle {
  sim::Simulator sim{11};
  net::Network net{sim};
  econ::Ledger ledger;
  net::NodeId a, r, b;
  Address addr_a = addr(1, 1, 1);
  Address addr_b = addr(1, 2, 1);

  explicit TracedTriangle(SpanTracer* spans) {
    net.set_spans(spans);
    ledger.set_span_tracer(spans);
    a = net.add_node(1);
    r = net.add_node(1);
    b = net.add_node(1);
    net.connect(a, r, 10e6, Duration::millis(1));
    net.connect(r, b, 10e6, Duration::millis(1));
    net.node(a).add_address(addr_a);
    net.node(b).add_address(addr_b);
    net.node(a).forwarding().set_default_route(0);
    net.node(r).forwarding().set_prefix_route(net::prefix_of(addr_a), 0);
    net.node(r).forwarding().set_prefix_route(net::prefix_of(addr_b), 1);
    net.node(b).forwarding().set_default_route(0);
    // The router tolls every web packet it forwards — the settlement must
    // land under the filter's decision span.
    net.node(r).add_filter({"toll", /*disclosed=*/true, [this](const Packet& p) {
                              if (p.proto == net::AppProto::kWeb) {
                                ledger.transfer("user:1", "isp:r", 0.5, "toll");
                              }
                              return net::FilterDecision::accept();
                            }});
  }

  void send_web(net::FlowId flow) {
    Packet p;
    p.src = addr_a;
    p.dst = addr_b;
    p.proto = net::AppProto::kWeb;
    p.flow = flow;
    p.size_bytes = 1000;
    net.node(a).originate(std::move(p));
  }
};

TEST(SpanIntegration, LedgerTransferNestsUnderFilterDecision) {
  SpanTracer spans;
  TracedTriangle t(&spans);
  t.send_web(1);
  t.sim.run();

  // flow → packet → hop(a) → hop(r) → decision → transfer, then deliver.
  const Span* decision = nullptr;
  const Span* transfer = nullptr;
  const Span* deliver = nullptr;
  for (const Span& s : spans.spans()) {
    if (s.name == "decision") decision = &s;
    if (s.component == "econ.ledger" && s.name == "transfer") transfer = &s;
    if (s.name == "deliver") deliver = &s;
  }
  ASSERT_NE(decision, nullptr);
  ASSERT_NE(transfer, nullptr);
  ASSERT_NE(deliver, nullptr);
  EXPECT_EQ(transfer->parent, decision->id);
  EXPECT_EQ(t.ledger.log().size(), 1u);
  EXPECT_EQ(t.ledger.log()[0].span, transfer->parent);  // the causing decision

  // The packet span is closed at delivery and the registry entry retired
  // (uids are per-network sequence numbers; the first packet draws 1).
  EXPECT_EQ(spans.find_packet(1), kNoSpan);
  const std::string report = explain_flow(spans.spans(), 1);
  EXPECT_NE(report.find("1 packet(s): 1 delivered"), std::string::npos);
  EXPECT_NE(report.find("user:1 -> isp:r"), std::string::npos);
  EXPECT_NE(report.find("caused by: net.filter decision"), std::string::npos);
}

TEST(SpanIntegration, DetachedTracerRecordsNothing) {
  SpanTracer spans;
  TracedTriangle t(nullptr);
  t.send_web(1);
  t.sim.run();
  EXPECT_TRUE(spans.empty());
  EXPECT_EQ(t.net.counters().delivered.value(), 1);
  EXPECT_EQ(t.ledger.log()[0].span, kNoSpan);
}

/// The sweep-level determinism contract: a replicated scenario exported at
/// --jobs 1 and --jobs 8 must produce byte-identical Chrome traces, because
/// per-run tracers merge in run-index order whatever the schedule was.
std::string sweep_trace(std::size_t jobs) {
  core::ScenarioSpec spec;
  spec.name = "span-determinism";
  spec.replicas = 6;
  spec.body = [](core::RunContext& ctx) {
    TracedTriangle t(ctx.spans());
    // Vary per-run content so a mis-ordered merge cannot accidentally agree.
    const auto flows = 1 + ctx.run_index() % 3;
    for (net::FlowId f = 1; f <= flows; ++f) t.send_web(f);
    ctx.add_events(t.sim.run());
    ctx.put("delivered", static_cast<double>(t.net.counters().delivered.value()));
  };

  core::SweepOptions opts;
  opts.base_seed = 5;
  opts.jobs = jobs;
  opts.spans = true;
  const core::SweepResult res = core::run_sweep(spec, opts);

  SpanTracer merged;
  for (const auto& r : res.runs) {
    if (r.spans) merged.merge(*r.spans);
  }
  EXPECT_GT(merged.size(), 0u);
  return to_chrome_trace(merged.spans());
}

TEST(SpanIntegration, ChromeTraceBitIdenticalAcrossJobs) {
  const std::string serial = sweep_trace(1);
  const std::string parallel = sweep_trace(8);
  EXPECT_EQ(serial, parallel);
  EXPECT_TRUE(JsonChecker::valid(serial));
}

TEST(SpanIntegration, SweepWithoutSpansLeavesRunsNull) {
  core::ScenarioSpec spec;
  spec.name = "no-spans";
  spec.body = [](core::RunContext& ctx) { EXPECT_EQ(ctx.spans(), nullptr); };
  const core::SweepResult res = core::run_sweep(spec, core::SweepOptions{});
  ASSERT_EQ(res.runs.size(), 1u);
  EXPECT_EQ(res.runs[0].spans, nullptr);
}

}  // namespace
}  // namespace tussle::sim
