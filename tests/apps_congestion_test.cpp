#include "apps/congestion.hpp"

#include <gtest/gtest.h>

namespace tussle::apps {
namespace {

TEST(JainsIndex, KnownValues) {
  EXPECT_DOUBLE_EQ(jains_index({1, 1, 1, 1}), 1.0);
  EXPECT_NEAR(jains_index({1, 0, 0, 0}), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(jains_index({}), 0.0);
  EXPECT_DOUBLE_EQ(jains_index({0, 0}), 0.0);
}

TEST(Congestion, AllCompliantSharesFairlyAndFillsThePipe) {
  CongestionConfig cfg;
  auto r = run_congestion(cfg);
  EXPECT_GT(r.utilization, 0.7);
  EXPECT_GT(r.jains_fairness, 0.95);
  EXPECT_NEAR(r.compliant_goodput_mean, cfg.capacity / cfg.senders, 1.5);
}

TEST(Congestion, OneCheaterStarvesTheCompliant) {
  CongestionConfig cfg;
  cfg.aggressive_fraction = 0.05;  // 1 of 20
  auto r = run_congestion(cfg);
  EXPECT_GT(r.aggressive_goodput_mean, 3.0 * r.compliant_goodput_mean);
}

TEST(Congestion, CollapseScalesWithCheaterFraction) {
  auto compliant_at = [](double f) {
    CongestionConfig cfg;
    cfg.aggressive_fraction = f;
    return run_congestion(cfg).compliant_goodput_mean;
  };
  const double none = compliant_at(0.0);
  const double some = compliant_at(0.25);
  const double many = compliant_at(0.5);
  EXPECT_GT(none, some);
  EXPECT_GT(some, many);
  EXPECT_LT(many, 0.3 * none);  // the "current situation cannot hold" claim
}

TEST(Congestion, FairQueueingBoundsTheTussle) {
  // The technical-mechanism answer: per-flow fairness at the router makes
  // cheating pointless.
  CongestionConfig cfg;
  cfg.aggressive_fraction = 0.25;
  cfg.fair_queueing = true;
  auto r = run_congestion(cfg);
  EXPECT_GT(r.jains_fairness, 0.9);
  // Cheaters keep only the spare capacity AIMD leaves on the table (a
  // bounded ~2x edge), instead of the >3x starvation seen under FIFO.
  EXPECT_LT(r.aggressive_goodput_mean, 2.0 * r.compliant_goodput_mean);
  EXPECT_GT(r.compliant_goodput_mean,
            0.7 * (100.0 / 20.0));  // compliant hold most of their fair share
}

TEST(Congestion, FairQueueingVsFifoUnderAttack) {
  CongestionConfig fifo;
  fifo.aggressive_fraction = 0.25;
  CongestionConfig fq = fifo;
  fq.fair_queueing = true;
  const auto r_fifo = run_congestion(fifo);
  const auto r_fq = run_congestion(fq);
  EXPECT_GT(r_fq.compliant_goodput_mean, 1.5 * r_fifo.compliant_goodput_mean);
}

TEST(Congestion, AllAggressiveOverloadsAndLoses) {
  CongestionConfig cfg;
  cfg.aggressive_fraction = 1.0;
  auto r = run_congestion(cfg);
  EXPECT_GT(r.loss_rate, 0.5);  // offered 20*50 on capacity 100
  EXPECT_NEAR(r.utilization, 1.0, 0.01);
}

TEST(Congestion, UnderloadedNetworkHasNoLoss) {
  CongestionConfig cfg;
  cfg.senders = 2;
  cfg.capacity = 1e9;
  cfg.rounds = 100;
  auto r = run_congestion(cfg);
  EXPECT_DOUBLE_EQ(r.loss_rate, 0.0);
}

// Sweep reproduced in bench_congestion — keep shape assertions here.
class CheaterSweep : public ::testing::TestWithParam<double> {};

TEST_P(CheaterSweep, CheatersAlwaysAtLeastMatchCompliant) {
  CongestionConfig cfg;
  cfg.aggressive_fraction = GetParam();
  auto r = run_congestion(cfg);
  if (GetParam() > 0 && GetParam() < 1.0) {
    EXPECT_GE(r.aggressive_goodput_mean, r.compliant_goodput_mean - 1e-9);
  }
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
  EXPECT_GE(r.jains_fairness, 0.0);
  EXPECT_LE(r.jains_fairness, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Fractions, CheaterSweep,
                         ::testing::Values(0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace tussle::apps
