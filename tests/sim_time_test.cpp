#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace tussle::sim {
namespace {

TEST(SimTime, DefaultIsZero) {
  SimTime t;
  EXPECT_EQ(t.as_nanos(), 0);
  EXPECT_EQ(t, SimTime::zero());
}

TEST(SimTime, UnitConstructors) {
  EXPECT_EQ(SimTime::nanos(5).as_nanos(), 5);
  EXPECT_EQ(SimTime::micros(3).as_nanos(), 3000);
  EXPECT_EQ(SimTime::millis(2).as_nanos(), 2'000'000);
  EXPECT_EQ(SimTime::seconds(1.5).as_nanos(), 1'500'000'000);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::millis(10);
  const SimTime b = SimTime::millis(4);
  EXPECT_EQ((a + b).as_nanos(), SimTime::millis(14).as_nanos());
  EXPECT_EQ((a - b).as_nanos(), SimTime::millis(6).as_nanos());
  SimTime c = a;
  c += b;
  EXPECT_EQ(c, SimTime::millis(14));
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(SimTime, ScalarScaling) {
  EXPECT_EQ((SimTime::seconds(2) * 1.5).as_nanos(), SimTime::seconds(3).as_nanos());
  EXPECT_EQ((SimTime::millis(10) * 0.5).as_nanos(), SimTime::millis(5).as_nanos());
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_GT(SimTime::seconds(1), SimTime::millis(999));
  EXPECT_LE(SimTime::zero(), SimTime::nanos(0));
}

TEST(SimTime, ConversionRoundTrip) {
  const SimTime t = SimTime::seconds(0.123456789);
  EXPECT_NEAR(t.as_seconds(), 0.123456789, 1e-9);
  EXPECT_NEAR(t.as_millis(), 123.456789, 1e-6);
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_NE(SimTime::seconds(2).to_string().find('s'), std::string::npos);
  EXPECT_NE(SimTime::millis(2).to_string().find("ms"), std::string::npos);
  EXPECT_NE(SimTime::nanos(2).to_string().find("ns"), std::string::npos);
}

TEST(SimTime, MaxIsLargerThanAnyPracticalTime) {
  EXPECT_GT(SimTime::max(), SimTime::seconds(1e9));
}

}  // namespace
}  // namespace tussle::sim
