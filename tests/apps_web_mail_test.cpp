#include <gtest/gtest.h>

#include "apps/mail.hpp"
#include "apps/web.hpp"
#include "net/topology.hpp"
#include "routing/link_state.hpp"

namespace tussle::apps {
namespace {

using net::Address;
using net::NodeId;

/// Star with routed addresses on every leaf, hub as router.
struct Fixture {
  sim::Simulator sim{7};
  net::Network net{sim};
  std::vector<NodeId> ids;
  std::vector<Address> addrs;
  std::vector<std::shared_ptr<AppMux>> muxes;

  explicit Fixture(std::size_t leaves = 5) {
    ids = net::build_star(net, leaves, 1, net::LinkSpec{});
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Address a{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
      net.node(ids[i]).add_address(a);
      addrs.push_back(a);
      muxes.push_back(AppMux::install(net.node(ids[i])));
    }
    routing::LinkState ls(net);
    ls.install_routes(ids);
  }
};

TEST(Web, RequestResponseRoundTrip) {
  Fixture f;
  WebServer server(f.net, f.ids[1], f.addrs[1], f.muxes[1]);
  WebClient client(f.net, f.ids[2], f.addrs[2], f.muxes[2]);
  client.request(server.address());
  f.sim.run();
  EXPECT_EQ(server.requests_served(), 1u);
  EXPECT_EQ(client.responses(), 1u);
  EXPECT_EQ(client.outstanding(), 0u);
  EXPECT_GT(client.latency_s().mean(), 0.0);
}

TEST(Web, MultipleRequestsMatchedByTag) {
  Fixture f;
  WebServer server(f.net, f.ids[1], f.addrs[1], f.muxes[1]);
  WebClient client(f.net, f.ids[2], f.addrs[2], f.muxes[2]);
  for (int i = 0; i < 10; ++i) client.request(server.address());
  f.sim.run();
  EXPECT_EQ(client.responses(), 10u);
  EXPECT_EQ(client.latency_s().count(), 10u);
}

TEST(Web, EncryptedRequestGetsEncryptedResponse) {
  Fixture f;
  // DPI on the hub drops visible web traffic.
  f.net.node(f.ids[0]).add_filter(net::PacketFilter{
      .name = "dpi",
      .disclosed = false,
      .fn = [](const net::Packet& p) {
        return p.observable_proto() == net::AppProto::kWeb
                   ? net::FilterDecision::drop("no-web")
                   : net::FilterDecision::accept();
      }});
  WebServer server(f.net, f.ids[1], f.addrs[1], f.muxes[1]);
  WebClient blocked(f.net, f.ids[2], f.addrs[2], f.muxes[2]);
  blocked.request(server.address(), /*encrypted=*/false);
  f.sim.run();
  EXPECT_EQ(blocked.responses(), 0u);

  WebClient covert(f.net, f.ids[3], f.addrs[3], f.muxes[3]);
  covert.request(server.address(), /*encrypted=*/true);
  f.sim.run();
  EXPECT_EQ(covert.responses(), 1u);  // §VI-A: encryption defeats the peeker
}

TEST(Mail, DeliveredThroughChosenRelay) {
  Fixture f;
  MailRelay relay(f.net, f.ids[1], f.addrs[1], f.muxes[1], 1.0, 0.0);
  MailUser alice(f.net, f.ids[2], f.addrs[2], f.muxes[2]);
  MailUser bob(f.net, f.ids[3], f.addrs[3], f.muxes[3]);
  alice.choose_relay(relay.address());
  alice.send(f.addrs[3]);
  f.sim.run();
  EXPECT_EQ(bob.received(), 1u);
  EXPECT_EQ(relay.relayed(), 1u);
}

TEST(Mail, UnreliableRelayLosesMail) {
  Fixture f;
  MailRelay flaky(f.net, f.ids[1], f.addrs[1], f.muxes[1], /*reliability=*/0.5, 0.0);
  MailUser alice(f.net, f.ids[2], f.addrs[2], f.muxes[2]);
  MailUser bob(f.net, f.ids[3], f.addrs[3], f.muxes[3]);
  alice.choose_relay(flaky.address());
  for (int i = 0; i < 200; ++i) {
    // Pace the sends so the access link queue (64 packets) never drops.
    f.sim.schedule(sim::Duration::millis(5) * static_cast<double>(i),
                   [&alice, &f]() { alice.send(f.addrs[3]); });
  }
  f.sim.run();
  EXPECT_GT(bob.received(), 60u);
  EXPECT_LT(bob.received(), 140u);
  EXPECT_EQ(flaky.relayed() + flaky.dropped(), 200u);
}

TEST(Mail, SwitchingRelayIsTheChoicePoint) {
  // §IV-B: the user avoids the unreliable relay by re-pointing one knob.
  Fixture f;
  MailRelay bad(f.net, f.ids[1], f.addrs[1], f.muxes[1], 0.0, 0.0);   // loses all
  MailRelay good(f.net, f.ids[4], f.addrs[4], f.muxes[4], 1.0, 0.0);
  MailUser alice(f.net, f.ids[2], f.addrs[2], f.muxes[2]);
  MailUser bob(f.net, f.ids[3], f.addrs[3], f.muxes[3]);
  alice.choose_relay(bad.address());
  alice.send(f.addrs[3]);
  f.sim.run();
  EXPECT_EQ(bob.received(), 0u);
  alice.choose_relay(good.address());
  alice.send(f.addrs[3]);
  f.sim.run();
  EXPECT_EQ(bob.received(), 1u);
}

TEST(Mail, SpamFilterQualityMatters) {
  Fixture f;
  MailRelay filtering(f.net, f.ids[1], f.addrs[1], f.muxes[1], 1.0, /*spam_filter=*/0.9);
  MailUser spammer(f.net, f.ids[2], f.addrs[2], f.muxes[2]);
  MailUser victim(f.net, f.ids[3], f.addrs[3], f.muxes[3]);
  spammer.choose_relay(filtering.address());
  for (int i = 0; i < 100; ++i) {
    f.sim.schedule(sim::Duration::millis(5) * static_cast<double>(i),
                   [&spammer, &f]() { spammer.send(f.addrs[3], /*spam=*/true); });
  }
  f.sim.run();
  EXPECT_LT(victim.spam_received(), 30u);
  EXPECT_GT(filtering.spam_blocked(), 70u);
}

TEST(Mail, NoRelayChosenDeliversDirect) {
  Fixture f;
  MailUser alice(f.net, f.ids[2], f.addrs[2], f.muxes[2]);
  MailUser bob(f.net, f.ids[3], f.addrs[3], f.muxes[3]);
  alice.send(f.addrs[3]);
  f.sim.run();
  EXPECT_EQ(bob.received(), 1u);
}

}  // namespace
}  // namespace tussle::apps
