#include "econ/value_flow.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace tussle::econ {
namespace {

routing::AsGraph canonical() {
  routing::AsGraph g;
  g.add_peering(1, 2);
  g.add_customer_provider(3, 1);
  g.add_customer_provider(4, 1);
  g.add_customer_provider(5, 2);
  g.add_customer_provider(6, 3);
  g.add_customer_provider(7, 4);
  g.add_customer_provider(7, 5);
  return g;
}

TEST(Ledger, TransfersMoveBalance) {
  Ledger l;
  l.transfer("user:1", "as:7", 5.0, "transit");
  EXPECT_DOUBLE_EQ(l.balance("user:1"), -5.0);
  EXPECT_DOUBLE_EQ(l.balance("as:7"), 5.0);
  EXPECT_DOUBLE_EQ(l.balance("nobody"), 0.0);
}

TEST(Ledger, ConservationInvariant) {
  Ledger l;
  l.transfer("a", "b", 3);
  l.transfer("b", "c", 1.5);
  l.transfer("c", "a", 0.25);
  EXPECT_NEAR(l.total(), 0.0, 1e-12);
  EXPECT_EQ(l.log().size(), 3u);
}

TEST(Ledger, RejectsBadTransfers) {
  Ledger l;
  EXPECT_THROW(l.transfer("a", "b", -1), std::invalid_argument);
  EXPECT_THROW(l.transfer("a", "a", 1), std::invalid_argument);
}

TEST(Ledger, RejectsNonFiniteAmounts) {
  Ledger l;
  EXPECT_THROW(l.transfer("a", "b", std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(l.transfer("a", "b", std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(l.transfer("a", "b", -std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  // A rejected transfer must leave no trace: no log entry, no balance drift.
  EXPECT_TRUE(l.log().empty());
  EXPECT_DOUBLE_EQ(l.balance("a"), 0.0);
  EXPECT_DOUBLE_EQ(l.total(), 0.0);
}

TEST(Ledger, TransferRecordsActiveSpan) {
  sim::SpanTracer spans;
  Ledger l;
  l.set_span_tracer(&spans);
  const sim::SpanId decision = spans.begin(sim::SimTime::millis(1), "net.filter", "decision");
  spans.push(decision);
  l.transfer("user:1", "isp:3", 0.25, "value-surcharge");
  spans.pop();

  ASSERT_EQ(l.log().size(), 1u);
  EXPECT_EQ(l.log()[0].span, decision);  // attributed to the causing decision
  // ... and a zero-length transfer span was emitted under it.
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans.spans()[1].component, "econ.ledger");
  EXPECT_EQ(spans.spans()[1].name, "transfer");
  EXPECT_EQ(spans.spans()[1].parent, decision);
}

TEST(Ledger, TransferWithoutTracerLeavesNoSpan) {
  Ledger l;
  l.transfer("a", "b", 1.0);
  EXPECT_EQ(l.log()[0].span, sim::kNoSpan);
}

TEST(PaidTransit, ValleyFreePathIsFree) {
  auto g = canonical();
  Ledger l;
  PaidTransit pt(g, l);
  auto q = pt.quote({6, 3, 1, 4, 7});
  EXPECT_TRUE(q.paid_ases.empty());
  EXPECT_DOUBLE_EQ(q.total_price, 0.0);
}

TEST(PaidTransit, ValleyPathChargesTheCarrier) {
  auto g = canonical();
  Ledger l;
  PaidTransit pt(g, l);
  pt.set_transit_price(7, 2.5);
  auto q = pt.quote({4, 7, 5});
  ASSERT_EQ(q.paid_ases.size(), 1u);
  EXPECT_EQ(q.paid_ases[0], routing::AsId{7});
  EXPECT_DOUBLE_EQ(q.total_price, 2.5);
}

TEST(PaidTransit, DefaultPriceWhenUnset) {
  auto g = canonical();
  Ledger l;
  PaidTransit pt(g, l);
  auto q = pt.quote({4, 7, 5});
  EXPECT_DOUBLE_EQ(q.total_price, 1.0);
}

TEST(PaidTransit, SettleMovesMoneyToEachCarrier) {
  auto g = canonical();
  Ledger l;
  PaidTransit pt(g, l);
  pt.set_transit_price(7, 2.0);
  auto q = pt.quote({4, 7, 5});
  const double moved = pt.settle("user:alice", q);
  EXPECT_DOUBLE_EQ(moved, 2.0);
  EXPECT_DOUBLE_EQ(l.balance("as:7"), 2.0);
  EXPECT_DOUBLE_EQ(l.balance("user:alice"), -2.0);
  EXPECT_NEAR(l.total(), 0.0, 1e-12);
}

TEST(PaidTransit, BestQuotePrefersCheaperPath) {
  auto g = canonical();
  Ledger l;
  PaidTransit pt(g, l);
  // 7 to 1: via 4 or via 5 (then 2, peer). Path 7-4-1 is valley-free and
  // free; it must win over anything priced.
  auto q = pt.best_quote(7, 1, 4);
  ASSERT_TRUE(q.has_value());
  EXPECT_DOUBLE_EQ(q->total_price, 0.0);
  EXPECT_TRUE(g.valley_free(q->path));
}

TEST(PaidTransit, BestQuoteUnreachable) {
  auto g = canonical();
  g.add_as(42);
  Ledger l;
  PaidTransit pt(g, l);
  EXPECT_FALSE(pt.best_quote(6, 42, 3).has_value());
}

}  // namespace
}  // namespace tussle::econ
