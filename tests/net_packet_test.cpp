#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace tussle::net {
namespace {

Packet make_packet() {
  Packet p;
  p.src = Address{.provider = 1, .subscriber = 1, .host = 1};
  p.dst = Address{.provider = 2, .subscriber = 1, .host = 1};
  p.proto = AppProto::kWeb;
  p.size_bytes = 800;
  p.payload_tag = "index.html";
  return p;
}

TEST(Packet, ObservableProtoVisibleByDefault) {
  Packet p = make_packet();
  EXPECT_EQ(p.observable_proto(), AppProto::kWeb);
  EXPECT_FALSE(p.visibly_opaque());
}

TEST(Packet, EncryptionHidesProto) {
  Packet p = make_packet();
  p.encrypted = true;
  EXPECT_EQ(p.observable_proto(), AppProto::kUnknown);
  // The paper: hiding should itself be visible.
  EXPECT_TRUE(p.visibly_opaque());
}

TEST(Packet, EncapsulationWrapsAndGrows) {
  Packet p = make_packet();
  p.uid = 99;
  const Address tsrc{.provider = 1, .subscriber = 1, .host = 1};
  const Address gw{.provider = 9, .subscriber = 0, .host = 1};
  Packet outer = p.encapsulate(tsrc, gw);
  EXPECT_EQ(outer.proto, AppProto::kVpn);
  EXPECT_EQ(outer.dst, gw);
  EXPECT_EQ(outer.size_bytes, p.size_bytes + 40);
  EXPECT_TRUE(outer.visibly_opaque());
  ASSERT_TRUE(outer.inner);
  EXPECT_EQ(outer.inner->dst, p.dst);
  EXPECT_EQ(outer.uid, 99u);
}

TEST(Packet, DecapsulationRestoresInner) {
  Packet p = make_packet();
  p.sent_at_s = 1.5;
  Packet outer = p.encapsulate(p.src, Address{.provider = 9, .subscriber = 0, .host = 1});
  outer.sent_at_s = 1.5;
  auto inner = outer.decapsulate();
  ASSERT_TRUE(inner.has_value());
  EXPECT_EQ(inner->dst, p.dst);
  EXPECT_EQ(inner->proto, AppProto::kWeb);
  EXPECT_EQ(inner->payload_tag, "index.html");
  EXPECT_DOUBLE_EQ(inner->sent_at_s, 1.5);
}

TEST(Packet, DecapsulateNonTunnelIsEmpty) {
  Packet p = make_packet();
  EXPECT_FALSE(p.decapsulate().has_value());
}

TEST(Packet, TunnelHidesInnerProtoButShowsTunnel) {
  Packet p = make_packet();
  p.proto = AppProto::kP2p;  // the thing the ISP wants to throttle
  Packet outer = p.encapsulate(p.src, Address{.provider = 9, .subscriber = 0, .host = 1});
  EXPECT_EQ(outer.observable_proto(), AppProto::kVpn);
  EXPECT_NE(outer.observable_proto(), AppProto::kP2p);
}

TEST(SourceRoute, NextHopAdvances) {
  SourceRoute sr{.hops = {3, 5, 7}, .next = 0};
  EXPECT_EQ(sr.next_hop(), AsId{3});
  sr.next = 2;
  EXPECT_EQ(sr.next_hop(), AsId{7});
  sr.next = 3;
  EXPECT_TRUE(sr.exhausted());
  EXPECT_FALSE(sr.next_hop().has_value());
}

TEST(PacketIdSource, MonotoneUnique) {
  PacketIdSource ids;
  auto a = ids.next();
  auto b = ids.next();
  EXPECT_LT(a, b);
  EXPECT_EQ(a, 1u);
}

TEST(ToString, CoversEnums) {
  EXPECT_EQ(to_string(ServiceClass::kPremium), "premium");
  EXPECT_EQ(to_string(AppProto::kVoip), "voip");
  EXPECT_EQ(to_string(AppProto::kVpn), "vpn");
}

}  // namespace
}  // namespace tussle::net
