#include "core/actor.hpp"

#include <gtest/gtest.h>

namespace tussle::core {
namespace {

Actor user() {
  return Actor{"alice", ActorKind::kUser, {{"privacy", +1.0}, {"openness", +1.0}}};
}
Actor isp() {
  return Actor{"bigisp", ActorKind::kCommercialIsp, {{"revenue", +1.0}, {"openness", -0.5}}};
}
Actor gov() {
  return Actor{"gov", ActorKind::kGovernment, {{"privacy", -1.0}, {"security", +1.0}}};
}

TEST(ActorNetwork, AddAndFind) {
  ActorNetwork n;
  auto a = n.add(user());
  auto b = n.add(isp());
  EXPECT_EQ(n.size(), 2u);
  EXPECT_EQ(n.find("alice"), a);
  EXPECT_EQ(n.find("bigisp"), b);
  EXPECT_FALSE(n.find("nobody").has_value());
  EXPECT_EQ(n.actor(a).kind, ActorKind::kUser);
}

TEST(ActorNetwork, AlignmentSymmetricAndClamped) {
  ActorNetwork n;
  auto a = n.add(user());
  auto b = n.add(isp());
  n.align(a, b, 0.7);
  EXPECT_DOUBLE_EQ(n.alignment(a, b), 0.7);
  EXPECT_DOUBLE_EQ(n.alignment(b, a), 0.7);
  n.align(a, b, 1.8);
  EXPECT_DOUBLE_EQ(n.alignment(a, b), 1.0);
  EXPECT_THROW(n.align(a, a, 0.5), std::invalid_argument);
  EXPECT_THROW(n.align(a, 99, 0.5), std::out_of_range);
}

TEST(ActorNetwork, DurabilityIsMeanPairwiseAlignment) {
  ActorNetwork n;
  auto a = n.add(user());
  auto b = n.add(isp());
  auto c = n.add(gov());
  n.align(a, b, 0.9);
  n.align(b, c, 0.3);
  // pair (a,c) unaligned = 0; mean over 3 pairs = 0.4.
  EXPECT_NEAR(n.durability(), 0.4, 1e-12);
}

TEST(ActorNetwork, AdverseInterestsDetected) {
  ActorNetwork n;
  auto a = n.add(user());   // privacy +1
  auto b = n.add(isp());    // openness -0.5 vs alice's +1
  auto c = n.add(gov());    // privacy -1 vs alice's +1
  EXPECT_TRUE(n.adverse(a, c));
  EXPECT_TRUE(n.adverse(a, b));
  EXPECT_FALSE(n.adverse(b, c));  // no opposed shared space
  EXPECT_EQ(n.adverse_pairs(), 2u);
}

TEST(ActorNetwork, EntryDisruptsDurability) {
  // §II-C: "the entrance of new actors ... creates continuous churn."
  ActorNetwork n;
  auto a = n.add(user());
  auto b = n.add(isp());
  n.align(a, b, 1.0);
  const double before = n.durability();
  const double drop = n.enter(gov(), /*disruption=*/0.2);
  EXPECT_GT(drop, 0.0);
  EXPECT_LT(n.durability(), before);
  EXPECT_EQ(n.size(), 3u);
}

TEST(ActorNetwork, AnnealFreezesTheNetwork) {
  // §II-C: no new entrants ⇒ alignments harden ⇒ the Internet freezes.
  ActorNetwork n;
  auto a = n.add(user());
  auto b = n.add(isp());
  auto c = n.add(gov());
  n.align(a, b, 0.1);
  n.align(b, c, 0.1);
  n.align(a, c, 0.1);
  n.anneal(0.2, 50);
  EXPECT_GT(n.durability(), 0.95);
}

TEST(ActorNetwork, AdversePairsAnnealSlower) {
  ActorNetwork n;
  auto a = n.add(user());
  auto c = n.add(gov());    // adverse to user
  auto b = n.add(isp());
  auto d = n.add(Actor{"cdn", ActorKind::kContentProvider, {{"revenue", 1.0}}});
  n.align(a, c, 0.0);
  n.align(b, d, 0.0);
  n.anneal(0.1, 10);
  EXPECT_LT(n.alignment(a, c), n.alignment(b, d));
}

TEST(ActorNetwork, ChurnVersusFreezeRace) {
  // With periodic entry, durability stays bounded away from 1 — the
  // paper's "innovation ... a pre-condition of a durably formed and
  // unchangeable Internet" run both ways.
  ActorNetwork frozen, churning;
  for (int i = 0; i < 4; ++i) {
    frozen.add(Actor{"f" + std::to_string(i), ActorKind::kUser, {}});
    churning.add(Actor{"c" + std::to_string(i), ActorKind::kUser, {}});
  }
  for (int round = 0; round < 20; ++round) {
    frozen.anneal(0.15, 1);
    churning.anneal(0.15, 1);
    if (round % 3 == 0) {
      churning.enter(Actor{"new" + std::to_string(round), ActorKind::kContentProvider, {}},
                     0.25);
    }
  }
  EXPECT_GT(frozen.durability(), 0.9);
  EXPECT_LT(churning.durability(), 0.6);
}

TEST(ActorKind, Names) {
  EXPECT_EQ(to_string(ActorKind::kRightsHolder), "rights-holder");
  EXPECT_EQ(to_string(ActorKind::kTechnology), "technology");
  EXPECT_EQ(to_string(ActorKind::kDesigner), "designer");
}

}  // namespace
}  // namespace tussle::core
