#include "routing/link_state.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace tussle::routing {
namespace {

using net::Address;
using net::NodeId;

TEST(LinkState, SpfDistancesOnLine) {
  sim::Simulator sim;
  net::Network net(sim);
  net::LinkSpec spec;
  spec.propagation = sim::Duration::millis(10);
  auto ids = net::build_line(net, 4, 1, spec);
  LinkState ls(net);
  auto tree = ls.spf(ids[0]);
  EXPECT_DOUBLE_EQ(tree.dist.at(ids[0]), 0.0);
  EXPECT_NEAR(tree.dist.at(ids[3]), 0.030, 1e-9);
  EXPECT_EQ(tree.first_hop.at(ids[3]), 0);
}

TEST(LinkState, PrefersCheaperMultiHopPath) {
  // Triangle: direct a-c is expensive, a-b-c is cheap.
  sim::Simulator sim;
  net::Network net(sim);
  NodeId a = net.add_node(1), b = net.add_node(1), c = net.add_node(1);
  net.connect(a, c, 1e6, sim::Duration::millis(100));  // a iface 0
  net.connect(a, b, 1e6, sim::Duration::millis(10));   // a iface 1
  net.connect(b, c, 1e6, sim::Duration::millis(10));
  LinkState ls(net);
  auto tree = ls.spf(a);
  EXPECT_NEAR(tree.dist.at(c), 0.020, 1e-9);
  EXPECT_EQ(tree.first_hop.at(c), 1);  // via b
}

TEST(LinkState, DownLinksExcluded) {
  sim::Simulator sim;
  net::Network net(sim);
  auto ids = net::build_line(net, 3, 1, net::LinkSpec{});
  net.link(0).set_up(false);
  LinkState ls(net);
  auto tree = ls.spf(ids[0]);
  EXPECT_EQ(tree.dist.count(ids[1]), 0u);
  EXPECT_EQ(tree.dist.count(ids[2]), 0u);
}

TEST(LinkState, MembershipRestrictsDomain) {
  sim::Simulator sim;
  net::Network net(sim);
  auto ids = net::build_line(net, 4, 1, net::LinkSpec{});
  LinkState ls(net);
  auto tree = ls.spf(ids[0], {ids[0], ids[1]});
  EXPECT_TRUE(tree.dist.count(ids[1]));
  EXPECT_FALSE(tree.dist.count(ids[2]));
}

TEST(LinkState, CustomCostFunction) {
  sim::Simulator sim;
  net::Network net(sim);
  NodeId a = net.add_node(1), b = net.add_node(1), c = net.add_node(1);
  net.connect(a, c, 1e6, sim::Duration::millis(1));    // slow link, short delay
  net.connect(a, b, 100e6, sim::Duration::millis(5));  // fast links, longer delay
  net.connect(b, c, 100e6, sim::Duration::millis(5));
  // Cost = inverse bandwidth: prefer the fat two-hop path.
  LinkState ls(net, [](const net::Link& l) { return 1e9 / l.bandwidth_bps(); });
  auto tree = ls.spf(a);
  EXPECT_EQ(tree.first_hop.at(c), 1);
}

TEST(LinkState, InstallRoutesEnablesEndToEndDelivery) {
  sim::Simulator sim;
  net::Network net(sim);
  sim::Rng rng(17);
  auto ids = net::build_random(net, 12, 1, rng, 0.5, 0.4, net::LinkSpec{});
  // Give every node an address.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    net.node(ids[i]).add_address(
        Address{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1});
  }
  LinkState ls(net);
  const std::size_t installed = ls.install_routes(ids);
  EXPECT_GT(installed, 0u);
  // Every pair can now exchange a packet.
  int expected = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = 0; j < ids.size(); ++j) {
      if (i == j) continue;
      net::Packet p;
      p.src = net.node(ids[i]).addresses()[0];
      p.dst = net.node(ids[j]).addresses()[0];
      net.node(ids[i]).originate(std::move(p));
      ++expected;
    }
  }
  sim.run();
  EXPECT_EQ(net.counters().delivered.value(), expected);
  EXPECT_EQ(net.counters().dropped_no_route.value(), 0);
}

// Property: Dijkstra agrees with the Bellman–Ford oracle on random graphs.
class SpfOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpfOracle, DijkstraMatchesBellmanFord) {
  sim::Simulator sim;
  net::Network net(sim);
  sim::Rng rng(GetParam());
  auto ids = net::build_random(net, 25, 1, rng, 0.35, 0.35, net::LinkSpec{});
  // Randomize link delays so costs differ.
  // (Delays were fixed by the builder; use a bandwidth-derived cost instead.)
  LinkState ls(net, [](const net::Link& l) {
    return l.propagation().as_seconds() * (1.0 + static_cast<double>(l.id() % 7));
  });
  for (net::NodeId src : {ids[0], ids[5], ids[24]}) {
    auto tree = ls.spf(src);
    auto oracle = ls.bellman_ford(src);
    ASSERT_EQ(tree.dist.size(), oracle.size());
    for (const auto& [n, d] : oracle) {
      EXPECT_NEAR(tree.dist.at(n), d, 1e-12) << "node " << n << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpfOracle, ::testing::Values(2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace tussle::routing
