// ExecProfiler: wall-clock runtime observability for both backends.
//
// Under test: the window/stall accounting (phase totals, worker shares,
// occupancy buckets, outbox volumes assembled from worker lanes), the
// slice cap, the validation replay of the virtual-barrier LPT model, the
// serial-vs-sharded hook parity (both backends record runs with the same
// schema and event totals), Chrome-trace structure, merge semantics, and
// — the determinism side — that attaching or detaching the profiler never
// changes what a run computes.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/exec_profile.hpp"
#include "sim/sharded_backend.hpp"
#include "sim/simulator.hpp"

namespace tussle::sim {
namespace {

ShardedBackend& install_sharded(Simulator& sim, std::size_t shards) {
  sim.set_backend(std::make_unique<ShardedBackend>(sim, shards));
  return dynamic_cast<ShardedBackend&>(sim.backend());
}

/// One synthetic two-worker window with hand-picked timings, so the
/// accounting assertions are exact (wall-clock noise only enters through
/// Run::elapsed and Window::elapsed, which these tests treat as >= 0).
void record_synthetic_run(ExecProfiler& ep) {
  const double run_wall = ep.begin_run("sharded", 2, 1'000'000);
  ep.begin_window(0, 1'000'000);
  ExecProfiler::WorkerLane& w0 = ep.lane(0);
  w0.owner_events(1, 10);
  w0.drained(1, 2, 4);
  w0.window(/*barrier_s=*/0.10, /*dispatch_s=*/0.20, /*drain_s=*/0.02,
            /*dispatch_start=*/0.125, /*drain_start=*/0.5, /*events=*/10);
  ExecProfiler::WorkerLane& w1 = ep.lane(1);
  w1.owner_events(2, 6);
  w1.window(0.15, 0.10, 0.01, 0.15, 0.25, 6);
  ep.end_window();
  // wall_start is an absolute wall reading, as the backends pass it; the
  // profiler stores it run-relative.
  ep.record_control(/*wall_start=*/run_wall + 0.33, /*fold_s=*/0.01,
                    /*control_s=*/0.02, /*events=*/3);
  ep.record_drained(2, kNoShard, 2);
  ep.record_fold(0.04);
  ep.end_run();
}

TEST(ExecProfiler, WindowAccountingAssemblesLanes) {
  ExecProfiler ep;
  record_synthetic_run(ep);

  ASSERT_EQ(ep.runs(), 1u);
  EXPECT_EQ(ep.windows(), 1u);
  EXPECT_EQ(ep.max_workers(), 2u);
  const ExecProfiler::Run& r = ep.run_records()[0];
  EXPECT_EQ(r.backend, "sharded");
  EXPECT_EQ(r.lookahead_ns, 1'000'000);
  EXPECT_GE(r.elapsed, 0.0);
  EXPECT_EQ(r.control_events, 3u);

  ASSERT_EQ(r.windows.size(), 1u);
  const ExecProfiler::Window& w = r.windows[0];
  EXPECT_EQ(w.events, 16u);
  ASSERT_EQ(w.workers.size(), 2u);
  EXPECT_FLOAT_EQ(w.workers[0].dispatch_s, 0.20f);
  EXPECT_FLOAT_EQ(w.workers[1].barrier_s, 0.15f);
  EXPECT_EQ(w.workers[0].events, 10u);
  ASSERT_EQ(w.owner_events.size(), 2u);
  EXPECT_EQ(w.owner_events.at(1), 10u);
  EXPECT_EQ(w.owner_events.at(2), 6u);

  const ExecProfiler::PhaseTotals p = ep.phases();
  EXPECT_NEAR(p.dispatch, 0.30, 1e-6);
  EXPECT_NEAR(p.drain, 0.03, 1e-6);
  EXPECT_NEAR(p.barrier, 0.25, 1e-6);
  EXPECT_NEAR(p.control, 0.02, 1e-9);
  EXPECT_NEAR(p.fold, 0.05, 1e-9);  // record_control's fold_s + record_fold

  const auto shares = ep.worker_shares();
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_NEAR(shares[0].busy_s, 0.22, 1e-6);
  EXPECT_NEAR(shares[0].idle_s, 0.10, 1e-6);
  EXPECT_NEAR(shares[1].busy_s, 0.11, 1e-6);

  // 16 events -> log2 bucket 5 ([16, 31]).
  const auto hist = ep.occupancy_histogram();
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist.at(5), 1u);

  // Worker-drained (1 -> 2) plus coordinator-drained (2 -> control inbox).
  const auto vols = ep.volumes();
  ASSERT_EQ(vols.size(), 2u);
  EXPECT_EQ(vols.at({1, 2}).events, 4u);
  EXPECT_EQ(vols.at({1, 2}).bytes, 4u * ExecProfiler::kMsgBytes);
  EXPECT_EQ(vols.at({2, kNoShard}).events, 2u);
}

TEST(ExecProfiler, ValidationReplaysLptModel) {
  ExecProfiler ep;
  record_synthetic_run(ep);
  const ExecProfiler::Validation v = ep.validate();

  EXPECT_EQ(v.workers, 2u);
  EXPECT_EQ(v.window_events, 16u);
  EXPECT_EQ(v.serial_events, 3u);
  // LPT over loads {10, 6} on 2 bins -> window cost 10; control events run
  // serially on both sides: predicted = (16 + 3) / (10 + 3).
  EXPECT_NEAR(v.predicted_speedup, 19.0 / 13.0, 1e-9);
  // Measured = busy / elapsed; the synthetic busy seconds dwarf the real
  // (microsecond) wall elapsed, so only sanity-check the sign.
  EXPECT_GT(v.measured_speedup, 0.0);
  // Loss decomposition: imbalance = max_dispatch - mean_dispatch; the real
  // window elapsed is far under max_dispatch, so barrier loss clamps to 0.
  EXPECT_NEAR(v.imbalance_seconds, 0.05, 1e-6);
  EXPECT_NEAR(v.drain_seconds, 0.02, 1e-6);
  EXPECT_NEAR(v.barrier_seconds, 0.0, 1e-9);
  EXPECT_STREQ(v.dominant_loss, "imbalance");
  EXPECT_EQ(v.windows_compared, 1u);

  const std::string json = ep.report_json();
  EXPECT_NE(json.find("\"model\":\"barrier-window-lpt\""), std::string::npos);
  EXPECT_NE(json.find("\"dominant\":\"imbalance\""), std::string::npos);
  EXPECT_NE(json.find("\"backends\":{\"sharded\":1}"), std::string::npos);
}

TEST(ExecProfiler, ValidationOnEmptyProfilerIsInert) {
  const ExecProfiler ep;
  const ExecProfiler::Validation v = ep.validate();
  EXPECT_EQ(v.window_events, 0u);
  EXPECT_EQ(v.predicted_speedup, 0.0);
  EXPECT_STREQ(v.dominant_loss, "none");
  EXPECT_NE(ep.report_json().find("\"runs\":0"), std::string::npos);
}

TEST(ExecProfiler, SliceCapDropsStartsKeepsAggregates) {
  ExecProfiler ep;
  ep.begin_run("sharded", 1, 1'000);
  const std::size_t n = ExecProfiler::kMaxSliceWindows + 40;
  for (std::size_t i = 0; i < n; ++i) {
    ep.begin_window(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(i) + 1);
    ep.lane(0).window(0.0, 0.001, 0.0, 0.5, -1.0, 2);
    ep.end_window();
  }
  ep.end_run();

  const ExecProfiler::Run& r = ep.run_records()[0];
  ASSERT_EQ(r.windows.size(), n);
  EXPECT_GE(r.windows[0].wall_start, 0.0);
  EXPECT_GE(r.windows[0].workers[0].dispatch_start, 0.0);
  // Past the cap: starts are dropped (no per-slice memory growth)...
  EXPECT_EQ(r.windows[ExecProfiler::kMaxSliceWindows].wall_start, -1.0);
  EXPECT_EQ(r.windows[n - 1].workers[0].dispatch_start, -1.0);
  // ...but the aggregates stay complete.
  EXPECT_EQ(ep.windows(), n);
  EXPECT_NEAR(ep.phases().dispatch, 0.001 * static_cast<double>(n), 1e-4);
  EXPECT_EQ(ep.validate().window_events, 2u * n);
}

TEST(ExecProfiler, ErroredRunIsDiscardedByNextBeginRun) {
  ExecProfiler ep;
  ep.begin_run("sharded", 1, 1'000);
  ep.begin_window(0, 1'000);
  ep.lane(0).window(0, 0.5, 0, 0, -1, 7);
  ep.end_window();
  // No end_run(): the run failed. A fresh begin_run discards it.
  record_synthetic_run(ep);
  ASSERT_EQ(ep.runs(), 1u);
  EXPECT_EQ(ep.run_records()[0].windows[0].events, 16u);
}

// Drives the same three-owner ring on a given backend with the profiler
// attached; returns the per-owner execution log for identity checks.
using Log = std::vector<std::pair<std::int64_t, std::string>>;

Log ring(std::size_t shards, ExecProfiler* ep) {
  Simulator sim(42);
  if (shards > 0) install_sharded(sim, shards);
  if (ep != nullptr) sim.set_exec_profiler(ep);
  const ShardId owners[] = {3, 5, 9};
  for (ShardId o : owners) sim.register_owner(o);
  for (int i = 0; i < 3; ++i) {
    sim.register_lookahead(owners[i], owners[(i + 1) % 3], Duration::millis(2));
  }
  Log logs[3];
  std::function<void(int, int)> hop = [&](int at, int remaining) {
    logs[at].emplace_back(sim.now().as_nanos(),
                          std::to_string(sim.rng().next_u64() % 1000));
    if (remaining == 0) return;
    const int next = (at + 1) % 3;
    sim.schedule_for(owners[next], Duration::millis(2), TaskTag{"test", "hop"},
                     [&hop, next, remaining] { hop(next, remaining - 1); });
  };
  for (int i = 0; i < 3; ++i) {
    sim.schedule_for(owners[i], Duration::millis(1 + i), TaskTag{"test", "start"},
                     [&hop, i] { hop(i, 7); });
  }
  EXPECT_EQ(sim.run(), 3u * 8u);
  Log merged;
  for (const Log& l : logs) merged.insert(merged.end(), l.begin(), l.end());
  return merged;
}

TEST(ExecProfiler, SerialAndShardedHooksShareOneSchema) {
  ExecProfiler serial_ep;
  ring(0, &serial_ep);
  ASSERT_EQ(serial_ep.runs(), 1u);
  EXPECT_EQ(serial_ep.run_records()[0].backend, "serial");
  EXPECT_EQ(serial_ep.max_workers(), 1u);
  EXPECT_EQ(serial_ep.windows(), 1u);  // the whole serial loop is one window
  EXPECT_EQ(serial_ep.validate().window_events, 24u);

  ExecProfiler sharded_ep;
  ring(3, &sharded_ep);
  ASSERT_EQ(sharded_ep.runs(), 1u);
  const ExecProfiler::Run& r = sharded_ep.run_records()[0];
  EXPECT_EQ(r.backend, "sharded");
  EXPECT_EQ(r.workers, 3u);
  EXPECT_GT(r.windows.size(), 1u);  // real barrier windows, not one blob
  EXPECT_EQ(sharded_ep.validate().window_events + sharded_ep.validate().serial_events,
            24u);
  // Cross-owner hops drained through outboxes show up as volumes.
  EXPECT_FALSE(sharded_ep.volumes().empty());

  // Parity: both reports carry the same top-level schema.
  for (const ExecProfiler* ep : {&serial_ep, &sharded_ep}) {
    const std::string json = ep->report_json();
    for (const char* key : {"\"phases\":", "\"workers_detail\":", "\"occupancy\":",
                            "\"outbox\":", "\"validation\":"}) {
      EXPECT_NE(json.find(key), std::string::npos) << key;
    }
  }
}

TEST(ExecProfiler, AttachedProfilerNeverChangesRunResults) {
  // The determinism side of the exec contract: wall-clock observation must
  // not perturb what the simulation computes, on either backend.
  for (std::size_t k : {0u, 1u, 3u}) {
    ExecProfiler ep;
    const Log with = ring(k, &ep);
    const Log without = ring(k, nullptr);
    EXPECT_EQ(with, without) << "k=" << k;
  }
}

TEST(ExecProfiler, ChromeTraceStructure) {
  ExecProfiler ep;
  record_synthetic_run(ep);
  ring(2, &ep);  // a real sharded run alongside the synthetic one
  const std::string trace = exec_chrome_trace(ep);

  // Envelope and metadata: one process per run, named coordinator/worker
  // tracks, wall-time "X" slices for each phase.
  EXPECT_EQ(trace.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  for (const char* needle :
       {"\"ph\":\"M\"", "\"ph\":\"X\"", "\"process_name\"", "\"thread_name\"",
        "\"coordinator\"", "\"worker 0\"", "\"worker 1\"",
        "\"name\":\"dispatch\"", "\"name\":\"window\"", "\"name\":\"control\"",
        "run 1 (sharded)", "run 2 (sharded)"}) {
    EXPECT_NE(trace.find(needle), std::string::npos) << needle;
  }
  // Synthetic run: worker 0's dispatch slice starts at 0.125 s = 125000 us
  // (an exactly-representable start, so the microsecond value is integral).
  EXPECT_NE(trace.find("\"ts\":125000,\"dur\":"), std::string::npos);
  EXPECT_EQ(trace.back(), '}');
}

TEST(ExecProfiler, DashboardIsSelfContained) {
  ExecProfiler ep;
  record_synthetic_run(ep);
  const std::string html = exec_dashboard(ep, "X1 · exec");
  for (const char* needle :
       {"<!DOCTYPE html>", "viz-root", "Worker timeline", "Window occupancy",
        "Stall breakdown", "rgba(var(--heat)", "dominant loss"}) {
    EXPECT_NE(html.find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(html.find("<script"), std::string::npos);  // zero-JS idiom
}

TEST(ExecProfiler, MergeAppendsRunRecords) {
  ExecProfiler a, b;
  record_synthetic_run(a);
  record_synthetic_run(b);
  ring(0, &b);
  a.merge(b);
  EXPECT_EQ(a.runs(), 3u);
  EXPECT_EQ(a.windows(), 3u);
  EXPECT_NEAR(a.phases().dispatch, 0.60, 0.2);  // 2x synthetic + tiny real run
  EXPECT_EQ(a.validate().window_events, 16u + 16u + 24u);
}

}  // namespace
}  // namespace tussle::sim
