// Full-stack integration scenarios: several subsystems exercised together,
// end to end, the way the examples and benches compose them.
#include <gtest/gtest.h>

#include "core/tussle.hpp"

namespace tussle {
namespace {

using net::Address;
using net::NodeId;

// ---------------------------------------------------------------------------
// QoS story: the investment model says "deploy", the ISP flips its router
// from FIFO to priority queueing, the user pays through the ledger, and the
// VoIP call measurably improves. Economics → data plane → application.
// ---------------------------------------------------------------------------
TEST(Integration, QosDeploymentImprovesVoipAndSettlesPayment) {
  // 1. The deployment decision.
  econ::InvestmentConfig icfg;
  icfg.value_flow = true;
  icfg.user_choice = true;
  sim::Rng irng(1);
  auto decision = econ::run_investment(icfg, irng);
  ASSERT_GT(decision.final_deploy_fraction, 0.99);
  ASSERT_TRUE(decision.open_service_available);

  // 2. Run the same congested uplink twice: FIFO vs deployed QoS.
  auto run_call = [](net::QueueKind kind) {
    sim::Simulator sim(7);
    net::Network net(sim);
    NodeId a = net.add_node(1), r = net.add_node(1), b = net.add_node(1);
    net.connect(a, r, 2e6, sim::Duration::millis(2), kind, 20);
    net.connect(r, b, 50e6, sim::Duration::millis(2));
    Address aa{.provider = 1, .subscriber = 1, .host = 1};
    Address ab{.provider = 1, .subscriber = 2, .host = 1};
    net.node(a).add_address(aa);
    net.node(b).add_address(ab);
    routing::LinkState ls(net);
    ls.install_routes({a, r, b});
    auto mux_b = apps::AppMux::install(net.node(b));
    apps::VoipSession call(net, a, aa, ab, net::ServiceClass::kPremium);
    apps::VoipSession::attach_receiver(mux_b, call);
    call.start(100, sim::Duration::millis(10));
    for (int i = 0; i < 400; ++i) {
      sim.schedule(sim::Duration::millis(2) * static_cast<double>(i), [&net, a, aa, ab]() {
        net::Packet junk;
        junk.src = aa;
        junk.dst = ab;
        junk.size_bytes = 1500;
        net.node(a).originate(std::move(junk));
      });
    }
    sim.run();
    return call.mos();
  };
  const double mos_fifo = run_call(net::QueueKind::kDropTail);
  const double mos_qos = run_call(net::QueueKind::kPriority);
  EXPECT_GT(mos_qos, mos_fifo + 0.5);
  EXPECT_GT(mos_qos, 3.5);

  // 3. The value flow the paper demanded.
  econ::Ledger ledger;
  econ::ValuePricing pricing(4.0, 0.0, /*qos_surcharge=*/2.0);
  econ::UsageProfile user{.premium_qos = true};
  ledger.transfer("user:alice", "isp:deployer", pricing.charge(user), "monthly-bill");
  EXPECT_DOUBLE_EQ(ledger.balance("isp:deployer"), 6.0);
  EXPECT_NEAR(ledger.total(), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Napster arc: mutual-aid sharing works; the rights holder strikes the
// index; the copies survive and direct transfers still move them — the
// tussle relocated rather than resolved.
// ---------------------------------------------------------------------------
TEST(Integration, RightsHolderStrikesIndexButNotTheCopies) {
  sim::Simulator sim(11);
  net::Network net(sim);
  auto ids = net::build_star(net, 4, 1, net::LinkSpec{});
  std::vector<Address> addrs;
  std::vector<std::shared_ptr<apps::AppMux>> muxes;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    Address a{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
    net.node(ids[i]).add_address(a);
    addrs.push_back(a);
    muxes.push_back(apps::AppMux::install(net.node(ids[i])));
  }
  routing::LinkState ls(net);
  ls.install_routes(ids);

  apps::P2pIndex index;
  apps::P2pPeer seeder(net, ids[1], addrs[1], index, muxes[1]);
  apps::P2pPeer fan1(net, ids[2], addrs[2], index, muxes[2]);
  apps::P2pPeer fan2(net, ids[3], addrs[3], index, muxes[3]);
  seeder.share("album");
  ASSERT_TRUE(fan1.fetch("album").has_value());
  sim.run();
  ASSERT_TRUE(fan1.has("album"));
  EXPECT_EQ(index.holders("album").size(), 2u);  // mutual aid grew the swarm

  // The injunction (the actor with legal power acts on the *index*).
  index.unpublish_all("album");
  EXPECT_FALSE(fan2.fetch("album").has_value());

  // But the copies themselves persist, and out-of-band coordination
  // (fan2 learns fan1's address elsewhere) still moves the bits.
  net::Packet req;
  req.src = addrs[3];
  req.dst = addrs[2];
  req.proto = net::AppProto::kP2p;
  req.payload_tag = "get:album";
  net.node(ids[3]).originate(std::move(req));
  sim.run();
  EXPECT_TRUE(fan2.has("album"));
}

// ---------------------------------------------------------------------------
// Trust story: a scam shop gets mediated away — the reputation feed from
// the mediator drives the trust firewall that then protects everyone else.
// ---------------------------------------------------------------------------
TEST(Integration, MediationFeedsReputationFeedsFirewall) {
  econ::Ledger ledger;
  trust::ReputationSystem reputation;
  trust::EscrowMediator card("card", ledger, reputation);
  for (int i = 0; i < 8; ++i) {
    card.transact("buyer" + std::to_string(i), "scamco", 25.0, /*honest=*/false);
  }
  trust::IdentityFramework framework;
  std::map<Address, trust::Identity> bindings;
  Address scam_addr{.provider = 6, .subscriber = 6, .host = 6};
  bindings[scam_addr] = trust::Identity{trust::IdentityScheme::kPseudonymous, "scamco", ""};
  trust::TrustFirewall fw("fw", {}, framework, reputation,
                          [&](const Address& a) -> std::optional<trust::Identity> {
                            auto it = bindings.find(a);
                            if (it == bindings.end()) return std::nullopt;
                            return it->second;
                          });
  net::Packet p;
  p.src = scam_addr;
  EXPECT_EQ(fw.decide(p).action, net::FilterAction::kDrop);
  // Every cheated buyer lost at most the cap.
  EXPECT_DOUBLE_EQ(ledger.balance("buyer0"), -0.5);
}

// ---------------------------------------------------------------------------
// Routing story: the market outcome (which ISP the customer buys from)
// reshapes the AS graph, and the paid source route uses the new edge.
// ---------------------------------------------------------------------------
TEST(Integration, MarketChoiceReshapesRoutingOptions) {
  // Customer AS 10 initially buys from provider 1 only.
  routing::AsGraph g;
  g.add_peering(1, 2);
  g.add_customer_provider(10, 1);
  g.add_as(20);
  g.add_customer_provider(20, 2);
  routing::SourceRouteBuilder before(g);
  EXPECT_EQ(before.k_shortest_paths(10, 20, 3).size(), 1u);

  // The market says multihoming is worth it (competition experiment E1
  // in miniature): the customer adds provider 2.
  g.add_customer_provider(10, 2);
  routing::SourceRouteBuilder after(g);
  auto paths = after.k_shortest_paths(10, 20, 3);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], (std::vector<routing::AsId>{10, 2, 20}));  // new, shorter
  // And the new path is free (customer route), where the old one crossed
  // the peering for free too — both on-contract.
  EXPECT_TRUE(after.free_of_charge(paths[0]));
}

// ---------------------------------------------------------------------------
// Policy → TussleMap audit across a whole deployed configuration.
// ---------------------------------------------------------------------------
TEST(Integration, DeployedPoliciesAuditableAsTussleMap) {
  policy::PolicySet isp(policy::standard_packet_ontology(), policy::Effect::kPermit);
  isp.add("qos-gate", policy::Effect::kPermit, "tos == 'premium'", "qos");
  isp.add("qos-by-app", policy::Effect::kDeny, "proto == 'voip' and tos == 'best-effort'",
          "qos");  // the §IV-A anti-pattern
  policy::PolicySet gov(policy::standard_packet_ontology(), policy::Effect::kPermit);
  gov.add("no-hiding", policy::Effect::kDeny, "opaque", "security");

  core::TussleMap map;
  map.import_policy_couplings("isp", isp);
  map.import_policy_couplings("gov", gov);
  auto entangled = map.entangled_mechanisms();
  ASSERT_EQ(entangled.size(), 1u);
  EXPECT_EQ(entangled[0].name, "isp:qos-by-app");
  EXPECT_TRUE(entangled[0].spaces_touched.count("application"));
  EXPECT_TRUE(entangled[0].spaces_touched.count("qos"));
  EXPECT_NEAR(map.entanglement_ratio(), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace tussle
