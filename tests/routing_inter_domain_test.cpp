#include "routing/inter_domain.hpp"

#include <gtest/gtest.h>

namespace tussle::routing {
namespace {

AsGraph canonical() {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_customer_provider(3, 1);
  g.add_customer_provider(4, 1);
  g.add_customer_provider(5, 2);
  g.add_customer_provider(6, 3);
  g.add_customer_provider(7, 4);
  g.add_customer_provider(7, 5);
  g.add_as(8);
  g.add_peering(7, 8);
  return g;
}

struct Fixture {
  sim::Simulator sim{67};
  net::Network net{sim};
  AsGraph g = canonical();
  InterDomainNet topo;

  Fixture() {
    topo = build_inter_domain(net, g, net::LinkSpec{});
    PathVector pv(g);
    install_path_vector_routes(net, topo, pv);
  }

  int send(AsId from, AsId to) {
    const auto before = net.counters().delivered.value();
    net::Packet p;
    p.src = topo.address_of.at(from);
    p.dst = topo.address_of.at(to);
    net.node(topo.router_of.at(from)).originate(std::move(p));
    sim.run();
    return static_cast<int>(net.counters().delivered.value() - before);
  }
};

TEST(InterDomain, TopologyMatchesGraph) {
  Fixture f;
  EXPECT_EQ(f.net.node_count(), f.g.as_count());
  EXPECT_EQ(f.net.link_count(), f.g.edge_count());
  for (AsId as : f.g.ases()) {
    EXPECT_EQ(f.net.node(f.topo.router_of.at(as)).as(), as);
    EXPECT_TRUE(f.net.node(f.topo.router_of.at(as)).owns(f.topo.address_of.at(as)));
  }
}

TEST(InterDomain, PacketsFollowPolicyRoutes) {
  Fixture f;
  EXPECT_EQ(f.send(6, 7), 1);
  EXPECT_EQ(f.send(7, 6), 1);
  EXPECT_EQ(f.send(3, 5), 1);
}

TEST(InterDomain, PolicyBlackholesAreRealDrops) {
  // AS 8 (peer-only) has no policy route to 6 — the packet-level symptom
  // must be a no-route drop, like a real BGP blackhole.
  Fixture f;
  const auto before = f.net.counters().dropped_no_route.value();
  EXPECT_EQ(f.send(8, 6), 0);
  EXPECT_GT(f.net.counters().dropped_no_route.value(), before);
}

TEST(InterDomain, PreferredPathUsedOnTheWire) {
  // AS 1 reaches 7 via its customer 4 (policy), not via peer 2. Verify by
  // link transmit counters.
  Fixture f;
  f.send(1, 7);
  // Find the 1-4 link and the 1-2 link.
  const net::NodeId n1 = f.topo.router_of.at(1);
  std::uint64_t via4 = 0, via2 = 0;
  for (net::IfIndex i = 0; i < static_cast<net::IfIndex>(f.net.node(n1).interface_count());
       ++i) {
    const net::Link& l = f.net.link(f.net.node(n1).link_of(i));
    const AsId peer_as = f.net.node(l.peer_of(n1)).as();
    if (peer_as == 4) via4 = l.tx_packets(n1);
    if (peer_as == 2) via2 = l.tx_packets(n1);
  }
  EXPECT_EQ(via4, 1u);
  EXPECT_EQ(via2, 0u);
}

TEST(InterDomain, SourceRouteCanUsePathsPolicyWontExpose) {
  // 8 cannot reach 6 by policy, but a source route 8→7→4→1→3→6 works on
  // the data plane (payment is econ's concern, carriage is possible).
  Fixture f;
  net::Packet p;
  p.src = f.topo.address_of.at(8);
  p.dst = f.topo.address_of.at(6);
  p.source_route = net::SourceRoute{.hops = {7, 4, 1, 3, 6}, .next = 0};
  const auto before = f.net.counters().delivered.value();
  f.net.node(f.topo.router_of.at(8)).originate(std::move(p));
  f.sim.run();
  EXPECT_EQ(f.net.counters().delivered.value() - before, 1);
}

TEST(InterDomain, InstallCountsRoutes) {
  sim::Simulator sim;
  net::Network net(sim);
  AsGraph g = canonical();
  auto topo = build_inter_domain(net, g, net::LinkSpec{});
  PathVector pv(g);
  const std::size_t installed = install_path_vector_routes(net, topo, pv);
  // Upper bound: n*(n-1) pairs; must be positive and below the bound.
  EXPECT_GT(installed, 20u);
  EXPECT_LT(installed, g.as_count() * (g.as_count() - 1));
}

}  // namespace
}  // namespace tussle::routing
