#include "sim/metric_registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/json.hpp"

namespace tussle::sim {
namespace {

TEST(MetricRegistry, GetOrCreateReturnsSameInstrument) {
  MetricRegistry reg;
  Counter& a = reg.counter("net.delivered");
  Counter& b = reg.counter("net.delivered");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistry, DuplicateNameDifferentKindThrows) {
  MetricRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.summary("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x"), std::logic_error);
  EXPECT_THROW(reg.time_weighted("x"), std::logic_error);
  EXPECT_THROW(reg.gauge("x", 1.0), std::logic_error);
  // The failed registrations must not have clobbered the counter.
  reg.counter("x").add(1);
  EXPECT_EQ(reg.counter("x").value(), 1);
}

TEST(MetricRegistry, GaugeLastPutWins) {
  MetricRegistry reg;
  reg.gauge("price", 4.0);
  reg.gauge("price", 7.5);
  EXPECT_DOUBLE_EQ(reg.snapshot().get("price"), 7.5);
}

TEST(MetricRegistry, SnapshotFlattensEveryKind) {
  MetricRegistry reg;
  reg.counter("drops").add(5);
  Summary& lat = reg.summary("latency");
  lat.observe(1.0);
  lat.observe(3.0);
  Histogram& sizes = reg.histogram("sizes");
  for (int i = 1; i <= 100; ++i) sizes.observe(static_cast<double>(i));
  TimeWeighted& depth = reg.time_weighted("depth");
  depth.set(SimTime::seconds(0), 2.0);
  depth.set(SimTime::seconds(1), 4.0);
  reg.gauge("hhi", 0.42);

  auto snap = reg.snapshot(SimTime::seconds(2));
  EXPECT_DOUBLE_EQ(snap.get("drops"), 5.0);
  EXPECT_DOUBLE_EQ(snap.get("latency.count"), 2.0);
  EXPECT_DOUBLE_EQ(snap.get("latency.mean"), 2.0);
  EXPECT_DOUBLE_EQ(snap.get("latency.min"), 1.0);
  EXPECT_DOUBLE_EQ(snap.get("latency.max"), 3.0);
  EXPECT_DOUBLE_EQ(snap.get("sizes.p50"), sizes.quantile(0.5));
  EXPECT_DOUBLE_EQ(snap.get("sizes.p99"), sizes.quantile(0.99));
  // 1s at value 2 + 1s at value 4 over a 2s window.
  EXPECT_DOUBLE_EQ(snap.get("depth.avg"), 3.0);
  EXPECT_DOUBLE_EQ(snap.get("depth.current"), 4.0);
  EXPECT_DOUBLE_EQ(snap.get("hhi"), 0.42);

  // Entries come out sorted by name.
  for (std::size_t i = 1; i < snap.entries().size(); ++i) {
    EXPECT_LT(snap.entries()[i - 1].first, snap.entries()[i].first);
  }
}

TEST(MetricSnapshot, GetFallbackAndContains) {
  MetricSnapshot snap({{"a", 1.0}, {"b", 2.0}});
  EXPECT_TRUE(snap.contains("a"));
  EXPECT_FALSE(snap.contains("c"));
  EXPECT_DOUBLE_EQ(snap.get("c", -1.0), -1.0);
}

TEST(MetricSnapshot, DiffSubtractsPerName) {
  MetricSnapshot before({{"a", 10.0}, {"b", 1.0}});
  MetricSnapshot after({{"a", 15.0}, {"c", 2.0}});
  auto d = MetricSnapshot::diff(before, after);
  EXPECT_DOUBLE_EQ(d.get("a"), 5.0);
  EXPECT_DOUBLE_EQ(d.get("b"), -1.0);  // vanished: diffs against zero
  EXPECT_DOUBLE_EQ(d.get("c"), 2.0);   // appeared mid-window
}

TEST(MetricSnapshot, JsonRoundTrip) {
  MetricRegistry reg;
  reg.counter("net.delivered").add(123456789);
  reg.gauge("price.mean", 3.14159265358979);
  reg.gauge("negative", -0.5);
  auto snap = reg.snapshot();
  auto back = MetricSnapshot::from_json(snap.to_json());
  ASSERT_EQ(back.size(), snap.size());
  for (const auto& [name, value] : snap.entries()) {
    EXPECT_DOUBLE_EQ(back.get(name), value) << name;
  }
}

TEST(MetricSnapshot, FromJsonRejectsMalformedInput) {
  EXPECT_THROW(MetricSnapshot::from_json(""), std::invalid_argument);
  EXPECT_THROW(MetricSnapshot::from_json("[1,2]"), std::invalid_argument);
  EXPECT_THROW(MetricSnapshot::from_json("{\"a\":}"), std::invalid_argument);
  EXPECT_THROW(MetricSnapshot::from_json("{\"a\":1"), std::invalid_argument);
}

TEST(Json, QuoteEscapesControlCharacters) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(json_quote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(json_quote(std::string("nul\x01") + "x"), "\"nul\\u0001x\"");
}

TEST(Json, NumberFormatting) {
  EXPECT_EQ(json_number(5.0), "5");
  EXPECT_EQ(json_number(-3.0), "-3");
  EXPECT_EQ(json_number(0.5), "0.5");
  // Round-trips exactly even for doubles needing full precision.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(json_number(v)), v);
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(Json, WriterCommaPlacement) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(std::int64_t{1});
  w.key("b").begin_array().value(true).null().value("x").end_array();
  w.key("c").raw("{\"nested\":2}");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[true,null,\"x\"],\"c\":{\"nested\":2}}");
}

}  // namespace
}  // namespace tussle::sim
