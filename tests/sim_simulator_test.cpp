#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tussle::sim {
namespace {

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen;
  sim.schedule(SimTime::millis(25), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::millis(25));
}

TEST(Simulator, RelativeSchedulingChains) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(SimTime::seconds(1), [&] {
    times.push_back(sim.now().as_seconds());
    sim.schedule(SimTime::seconds(1), [&] { times.push_back(sim.now().as_seconds()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulator, HorizonStopsExecution) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::seconds(1), [&] { ++fired; });
  sim.schedule(SimTime::seconds(3), [&] { ++fired; });
  sim.run(SimTime::seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::seconds(2));  // clock advanced to horizon
  sim.run();                                  // resume to completion
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventAtExactHorizonFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule(SimTime::seconds(2), [&] { fired = true; });
  sim.run(SimTime::seconds(2));
  EXPECT_TRUE(fired);
}

TEST(Simulator, ScheduleAtRejectsPast) {
  Simulator sim;
  sim.schedule(SimTime::seconds(5), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime::seconds(1), [] {}), std::invalid_argument);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(SimTime::seconds(i), [&] {
      ++fired;
      if (fired == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.events_pending(), 7u);
}

TEST(Simulator, ScheduleEveryRepeatsUntilFalse) {
  Simulator sim;
  int ticks = 0;
  sim.schedule_every(SimTime::seconds(1), [&] {
    ++ticks;
    return ticks < 5;
  });
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.now(), SimTime::seconds(5));
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.schedule(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::seconds(1), [&] { ++fired; });
  sim.schedule(SimTime::seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, DeterministicAcrossRunsWithSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<double> draws;
    sim.schedule_every(SimTime::millis(10), [&] {
      draws.push_back(sim.rng().uniform());
      return draws.size() < 100;
    });
    sim.run();
    return draws;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

TEST(Simulator, EventsExecutedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(SimTime::millis(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

}  // namespace
}  // namespace tussle::sim
