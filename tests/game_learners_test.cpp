#include "game/learners.hpp"

#include <gtest/gtest.h>

#include "game/canonical.hpp"
#include "game/solvers.hpp"

namespace tussle::game {
namespace {

TEST(FictitiousPlay, TracksOpponentEmpirical) {
  FictitiousPlay fp({{1, 0}, {0, 1}});
  fp.observe(0, 0);
  fp.observe(0, 0);
  fp.observe(1, 0);
  auto m = fp.opponent_empirical();
  EXPECT_NEAR(m[0], 2.0 / 3, 1e-12);
  EXPECT_NEAR(m[1], 1.0 / 3, 1e-12);
}

TEST(FictitiousPlay, BestRespondsToHistory) {
  // Payoff: action 0 good vs opp 0; action 1 good vs opp 1.
  FictitiousPlay fp({{5, 0}, {0, 5}});
  sim::Rng rng(1);
  for (int i = 0; i < 10; ++i) fp.observe(1, 0);
  EXPECT_EQ(fp.choose(rng), 1u);
}

TEST(FictitiousPlay, SelfPlayConvergesInMatchingPennies) {
  auto g = matching_pennies();
  FictitiousPlay row(row_payoff_matrix(g));
  FictitiousPlay col(col_payoff_matrix(g));
  sim::Rng rng(7);
  auto out = play_repeated(g, row, col, 20000, rng);
  EXPECT_NEAR(out.row_empirical[0], 0.5, 0.02);
  EXPECT_NEAR(out.col_empirical[0], 0.5, 0.02);
  EXPECT_NEAR(out.row_mean_payoff, 0.0, 0.02);
}

TEST(RegretMatching, RegretVanishes) {
  auto g = matching_pennies();
  RegretMatching row(row_payoff_matrix(g));
  RegretMatching col(col_payoff_matrix(g));
  sim::Rng rng(3);
  play_repeated(g, row, col, 30000, rng);
  EXPECT_LT(row.average_regret(), 0.03);
  EXPECT_LT(col.average_regret(), 0.03);
}

TEST(RegretMatching, LearnsToDefectInPd) {
  auto g = congestion_compliance_game();
  RegretMatching row(row_payoff_matrix(g));
  RegretMatching col(col_payoff_matrix(g));
  sim::Rng rng(5);
  auto out = play_repeated(g, row, col, 20000, rng);
  EXPECT_GT(out.row_empirical[1], 0.95);  // defect
  EXPECT_GT(out.col_empirical[1], 0.95);
}

TEST(EpsilonGreedy, ExploitsBetterArmAgainstFixedOpponent) {
  auto g = congestion_compliance_game();
  EpsilonGreedy row(2, 0.1);
  FixedStrategy col(Mixed{1.0, 0.0});  // opponent always complies
  sim::Rng rng(11);
  auto out = play_repeated(g, row, col, 5000, rng);
  EXPECT_GT(out.row_empirical[1], 0.8);  // defect exploits the complier
}

TEST(MyopicBestResponse, RespondsToLastAction) {
  MyopicBestResponse m({{5, 0}, {0, 5}});
  sim::Rng rng(13);
  m.observe(1, 0);
  EXPECT_EQ(m.choose(rng), 1u);
  m.observe(0, 0);
  EXPECT_EQ(m.choose(rng), 0u);
}

TEST(FixedStrategy, RespectsWeights) {
  FixedStrategy f(Mixed{0.2, 0.8});
  sim::Rng rng(17);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += (f.choose(rng) == 1);
  EXPECT_NEAR(ones / static_cast<double>(n), 0.8, 0.02);
}

TEST(PlayRepeated, ZeroRoundsIsEmpty) {
  auto g = matching_pennies();
  FixedStrategy a(Mixed{1, 0}), b(Mixed{1, 0});
  sim::Rng rng(1);
  auto out = play_repeated(g, a, b, 0, rng);
  EXPECT_EQ(out.rounds, 0u);
  EXPECT_DOUBLE_EQ(out.row_mean_payoff, 0.0);
}

TEST(PayoffMatrixHelpers, TransposeColumnView) {
  auto g = congestion_compliance_game();
  auto r = row_payoff_matrix(g);
  auto c = col_payoff_matrix(g);
  EXPECT_DOUBLE_EQ(r[1][0], 5.0);  // row defects vs comply
  EXPECT_DOUBLE_EQ(c[1][0], 5.0);  // col defects vs (row) comply
  EXPECT_DOUBLE_EQ(c[0][1], 0.0);  // col complies vs defect
}

// Bounded-rationality sweep (§II-B, Binmore): sophisticated learners reach
// equilibrium play in the PD; the satisficer with high exploration noise
// deviates measurably — "actors are often ill-informed, myopic".
class BoundedRationality : public ::testing::TestWithParam<double> {};

TEST_P(BoundedRationality, ExplorationNoiseKeepsPlayOffEquilibrium) {
  const double eps = GetParam();
  auto g = congestion_compliance_game();
  EpsilonGreedy row(2, eps);
  RegretMatching col(col_payoff_matrix(g));
  sim::Rng rng(23);
  auto out = play_repeated(g, row, col, 10000, rng);
  // Fraction of compliance (non-equilibrium action) scales with noise/2
  // (exploration splits evenly across both actions).
  EXPECT_NEAR(out.row_empirical[0], eps / 2, 0.05);
}

INSTANTIATE_TEST_SUITE_P(NoiseSweep, BoundedRationality,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5));

}  // namespace
}  // namespace tussle::game
