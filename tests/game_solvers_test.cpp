#include "game/solvers.hpp"

#include <gtest/gtest.h>
#include <map>

#include "game/canonical.hpp"

namespace tussle::game {
namespace {

TEST(SolveZeroSum, MatchingPenniesValueZero) {
  auto s = solve_zero_sum(matching_pennies());
  EXPECT_NEAR(s.value, 0.0, 0.01);
  EXPECT_NEAR(s.row[0], 0.5, 0.02);
  EXPECT_NEAR(s.col[0], 0.5, 0.02);
  EXPECT_LT(s.gap, 0.05);
}

TEST(SolveZeroSum, SaddlePointGame) {
  // Row 1 / col 0 is a saddle point with value 2.
  auto g = MatrixGame::zero_sum({{1, 0}, {2, 3}});
  auto s = solve_zero_sum(g);
  EXPECT_NEAR(s.value, 2.0, 0.01);
  EXPECT_GT(s.row[1], 0.98);
  EXPECT_GT(s.col[0], 0.98);
}

TEST(SolveZeroSum, AsymmetricMixedGame) {
  // Value = (1*4 - 2*3)/(1+4-2-3) = -2/0 ... pick a well-posed one:
  // [[3, -1], [-2, 4]]: v = (3*4 - (-1)(-2)) / (3+4+1+2) = 10/10 = 1.
  auto g = MatrixGame::zero_sum({{3, -1}, {-2, 4}});
  auto s = solve_zero_sum(g, 50000);
  EXPECT_NEAR(s.value, 1.0, 0.02);
  // Optimal row mix: (4-(-2))/10, i.e. 0.6 / 0.4.
  EXPECT_NEAR(s.row[0], 0.6, 0.03);
  // Optimal col mix: (4-(-1))/10 = 0.5.
  EXPECT_NEAR(s.col[0], 0.5, 0.03);
}

TEST(SolveZeroSum, ResultIsEpsilonNash) {
  auto g = MatrixGame::zero_sum({{0, 2, -1}, {-2, 0, 3}, {1, -3, 0}});
  auto s = solve_zero_sum(g, 50000);
  EXPECT_TRUE(g.is_epsilon_nash(s.row, s.col, s.gap + 0.01));
}

TEST(LearnEquilibrium, PdConvergesToDefect) {
  sim::Rng rng(9);
  auto p = learn_equilibrium(congestion_compliance_game(), 20000, rng);
  EXPECT_GT(p.row[1], 0.95);
  EXPECT_GT(p.col[1], 0.95);
  EXPECT_LT(p.epsilon, 0.05);
}

TEST(LearnEquilibrium, MatchingPenniesSmallEpsilon) {
  sim::Rng rng(10);
  auto p = learn_equilibrium(matching_pennies(), 50000, rng);
  EXPECT_LT(p.epsilon, 0.05);
}

// Property: fictitious-play value approximation tightens with iterations.
class MinimaxConvergence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MinimaxConvergence, GapShrinks) {
  auto g = MatrixGame::zero_sum({{3, -1}, {-2, 4}});
  auto s = solve_zero_sum(g, GetParam());
  // Robinson-style bound is slow (O(t^{-1/k})), so just require sanity plus
  // monotone-ish improvement across the sweep checked below.
  EXPECT_GE(s.gap, 0.0);
  EXPECT_NEAR(s.value, 1.0, 0.5);
  static std::map<std::size_t, double> gaps;
  gaps[GetParam()] = s.gap;
  if (gaps.count(100) && gaps.count(100000)) {
    EXPECT_LT(gaps[100000], gaps[100]);
  }
}

INSTANTIATE_TEST_SUITE_P(Iterations, MinimaxConvergence,
                         ::testing::Values(100, 1000, 10000, 100000));

}  // namespace
}  // namespace tussle::game
