#include <gtest/gtest.h>

#include "econ/lock_in.hpp"
#include "econ/pricing.hpp"

namespace tussle::econ {
namespace {

TEST(FlatRate, SamePriceRegardlessOfUse) {
  FlatRate f(5.0);
  UsageProfile heavy{.bytes = 1e12, .runs_server = true, .runs_server_visible = true};
  UsageProfile light{};
  EXPECT_DOUBLE_EQ(f.charge(heavy), 5.0);
  EXPECT_DOUBLE_EQ(f.charge(light), 5.0);
  EXPECT_EQ(f.name(), "flat");
}

TEST(ValuePricing, SurchargesVisibleServers) {
  ValuePricing v(4.0, 3.0);
  UsageProfile server{.runs_server = true, .runs_server_visible = true};
  UsageProfile plain{};
  EXPECT_DOUBLE_EQ(v.charge(server), 7.0);
  EXPECT_DOUBLE_EQ(v.charge(plain), 4.0);
}

TEST(ValuePricing, TunnellingEvadesTheSurcharge) {
  // The §V-A-2 move: the user still runs the server, but the wire no
  // longer shows it.
  ValuePricing v(4.0, 3.0);
  UsageProfile tunnelled{.runs_server = true, .runs_server_visible = false};
  EXPECT_DOUBLE_EQ(v.charge(tunnelled), 4.0);
}

TEST(ValuePricing, QosSurchargeIndependentOfServer) {
  ValuePricing v(4.0, 3.0, 2.0);
  UsageProfile q{.premium_qos = true};
  EXPECT_DOUBLE_EQ(v.charge(q), 6.0);
  UsageProfile both{.runs_server = true, .runs_server_visible = true, .premium_qos = true};
  EXPECT_DOUBLE_EQ(v.charge(both), 9.0);
}

TEST(PerByte, ScalesWithVolume) {
  PerByte p(2.0);  // per GB
  UsageProfile u{.bytes = 3e9};
  EXPECT_DOUBLE_EQ(p.charge(u), 6.0);
  EXPECT_DOUBLE_EQ(p.charge(UsageProfile{}), 0.0);
}

TEST(LockInModel, StaticScalesWithHosts) {
  LockInModel m;
  EXPECT_DOUBLE_EQ(m.switching_cost(AddressingMode::kStaticProviderAssigned, 10), 8.0);
  EXPECT_DOUBLE_EQ(m.switching_cost(AddressingMode::kStaticProviderAssigned, 1), 0.8);
}

TEST(LockInModel, DhcpIsFlatAndSmall) {
  LockInModel m;
  EXPECT_DOUBLE_EQ(m.switching_cost(AddressingMode::kDhcpDynamicDns, 1000), 0.1);
}

TEST(LockInModel, PortableIsFreeToSwitchButBloatsTables) {
  LockInModel m;
  EXPECT_DOUBLE_EQ(m.switching_cost(AddressingMode::kProviderIndependent, 1000), 0.0);
  EXPECT_EQ(m.core_table_entries(AddressingMode::kProviderIndependent, 500), 500u);
  EXPECT_EQ(m.core_table_entries(AddressingMode::kStaticProviderAssigned, 500), 0u);
  EXPECT_EQ(m.core_table_entries(AddressingMode::kDhcpDynamicDns, 500), 0u);
}

TEST(LockInModel, ModeNames) {
  EXPECT_EQ(to_string(AddressingMode::kStaticProviderAssigned), "static-provider-assigned");
  EXPECT_EQ(to_string(AddressingMode::kDhcpDynamicDns), "dhcp+dyndns");
  EXPECT_EQ(to_string(AddressingMode::kProviderIndependent), "provider-independent");
}

}  // namespace
}  // namespace tussle::econ
