// Runtime twin of tools/detlint: the determinism *contract* under test.
//
// detlint statically rejects constructs that break bit-exact replay; these
// tests assert the positive property — the same seed produces the same event
// ordering and the same stats, twice. They are also the workload that makes
// sanitizer runs meaningful for the event engine: the schedule/cancel stress
// loop exercises the heap compaction and tombstone paths under ASan/UBSan.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "apps/congestion.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace tussle {
namespace {

using sim::Duration;
using sim::EventId;
using sim::EventQueue;
using sim::Rng;
using sim::SimTime;
using sim::Simulator;

// One (time, tag) pair per fired event; two runs must produce equal journals.
using Journal = std::vector<std::pair<std::int64_t, int>>;

// ------------------------------------------------- EventQueue stress -----

/// Schedules `n` events at random times (with deliberate collisions),
/// cancels a random subset, then drains, journaling what fired.
Journal run_event_queue_stress(std::uint64_t seed, int n) {
  Rng rng(seed);
  EventQueue q;
  Journal fired;
  std::vector<EventId> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Coarse buckets force plenty of same-instant ties, so tie-breaking by
    // insertion order is exercised, not just time ordering.
    const auto at = SimTime::millis(rng.uniform_int(0, 50));
    ids.push_back(q.push(at, [&fired, at, i] { fired.emplace_back(at.as_nanos(), i); }));
  }
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) q.cancel(ids[static_cast<std::size_t>(rng.uniform_int(0, n - 1))]);
  }
  // Interleave more scheduling after cancellation, as protocols do.
  for (int i = 0; i < n / 4; ++i) {
    const auto at = SimTime::millis(rng.uniform_int(0, 50));
    q.push(at, [&fired, at, i] { fired.emplace_back(at.as_nanos(), 100000 + i); });
  }
  while (!q.empty()) {
    auto popped = q.pop();
    popped.action();
  }
  return fired;
}

TEST(DeterminismContract, EventQueueStressReplaysBitIdentically) {
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    const Journal a = run_event_queue_stress(seed, 2000);
    const Journal b = run_event_queue_stress(seed, 2000);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

TEST(DeterminismContract, EventQueueBreaksTiesInScheduleOrder) {
  const Journal j = run_event_queue_stress(7, 500);
  // Within one instant, tags scheduled earlier fire earlier (tags from the
  // second scheduling wave carry a +100000 offset and came later).
  for (std::size_t i = 1; i < j.size(); ++i) {
    ASSERT_LE(j[i - 1].first, j[i].first) << "time went backwards at " << i;
    if (j[i - 1].first == j[i].first) {
      const bool prev_late_wave = j[i - 1].second >= 100000;
      const bool cur_late_wave = j[i].second >= 100000;
      if (prev_late_wave == cur_late_wave) {
        EXPECT_LT(j[i - 1].second, j[i].second) << "FIFO tie-break violated at " << i;
      } else {
        EXPECT_TRUE(cur_late_wave) << "second-wave event fired before first-wave at " << i;
      }
    }
  }
}

// ------------------------------------------------- Simulator replay ------

/// A small self-scheduling workload: every event draws randomness, journals
/// it, and schedules 0–2 successors. Replay must be bit-identical.
Journal run_simulator_scenario(std::uint64_t seed) {
  Simulator s(seed);
  Journal journal;
  int spawned = 0;
  std::function<void()> tick = [&] {
    const double draw = s.rng().uniform();
    journal.emplace_back(s.now().as_nanos(), static_cast<int>(draw * 1'000'000));
    if (spawned >= 3000) return;
    // Supercritical branching (1–2 children, ~10% cancelled) so the run is
    // ended by the spawn cap, not by early extinction.
    const int children = static_cast<int>(s.rng().uniform_int(1, 2));
    for (int c = 0; c < children; ++c) {
      ++spawned;
      EventId id = s.schedule(Duration::micros(s.rng().uniform_int(1, 500)), tick);
      // Occasionally cancel a freshly scheduled event, as protocols cancel
      // retransmit timers.
      if (s.rng().bernoulli(0.1)) s.cancel(id);
    }
  };
  for (int i = 0; i < 10; ++i) {
    ++spawned;
    s.schedule(Duration::micros(i + 1), tick);
  }
  s.run();
  return journal;
}

TEST(DeterminismContract, SimulatorScenarioReplaysBitIdentically) {
  const Journal a = run_simulator_scenario(12345);
  const Journal b = run_simulator_scenario(12345);
  ASSERT_GT(a.size(), 100u);
  EXPECT_EQ(a, b);
}

TEST(DeterminismContract, DifferentSeedsDiverge) {
  // Not a correctness requirement per se, but if two seeds coincide the
  // replay tests above lose their teeth.
  EXPECT_NE(run_simulator_scenario(1), run_simulator_scenario(2));
}

// ------------------------------------------------- Scenario stats --------

TEST(DeterminismContract, CongestionScenarioStatsAreBitIdentical) {
  apps::CongestionConfig cfg;
  cfg.aggressive_fraction = 0.3;
  cfg.fair_queueing = true;
  const auto r1 = apps::run_congestion(cfg);
  const auto r2 = apps::run_congestion(cfg);
  // EXPECT_EQ (not NEAR): the contract is bit-identity, not closeness.
  EXPECT_EQ(r1.compliant_goodput_mean, r2.compliant_goodput_mean);
  EXPECT_EQ(r1.aggressive_goodput_mean, r2.aggressive_goodput_mean);
  EXPECT_EQ(r1.utilization, r2.utilization);
  EXPECT_EQ(r1.loss_rate, r2.loss_rate);
  EXPECT_EQ(r1.jains_fairness, r2.jains_fairness);
}

}  // namespace
}  // namespace tussle
