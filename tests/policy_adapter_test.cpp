#include "policy/packet_adapter.hpp"

#include <gtest/gtest.h>

namespace tussle::policy {
namespace {

net::Packet packet(net::AppProto proto, bool encrypted = false) {
  net::Packet p;
  p.src = net::Address{.provider = 1, .subscriber = 1, .host = 5};
  p.dst = net::Address{.provider = 2, .subscriber = 1, .host = 9};
  p.proto = proto;
  p.size_bytes = 1200;
  p.encrypted = encrypted;
  return p;
}

TEST(PacketAdapter, ContextCarriesObservableFields) {
  Context c = context_for_packet(packet(net::AppProto::kVoip));
  EXPECT_EQ(std::get<std::string>(c.get("proto")), "voip");
  EXPECT_DOUBLE_EQ(std::get<double>(c.get("size")), 1200.0);
  EXPECT_DOUBLE_EQ(std::get<double>(c.get("src_as")), 1.0);
  EXPECT_DOUBLE_EQ(std::get<double>(c.get("dst_host")), 9.0);
  EXPECT_FALSE(std::get<bool>(c.get("opaque")));
}

TEST(PacketAdapter, EncryptionCollapsesProtoInContext) {
  Context c = context_for_packet(packet(net::AppProto::kVoip, /*encrypted=*/true));
  EXPECT_EQ(std::get<std::string>(c.get("proto")), "unknown");
  EXPECT_TRUE(std::get<bool>(c.get("opaque")));
  EXPECT_FALSE(std::get<bool>(c.get("payload_visible")));
}

TEST(PacketAdapter, FilterEnforcesDeny) {
  PolicySet ps(standard_packet_ontology(), Effect::kPermit);
  ps.add("no-p2p", Effect::kDeny, "proto == 'p2p'", "application");
  auto f = make_packet_filter("isp-dpi", false, std::move(ps));
  EXPECT_EQ(f.fn(packet(net::AppProto::kP2p)).action, net::FilterAction::kDrop);
  EXPECT_EQ(f.fn(packet(net::AppProto::kWeb)).action, net::FilterAction::kAccept);
  EXPECT_FALSE(f.disclosed);
  EXPECT_EQ(f.name, "isp-dpi");
}

TEST(PacketAdapter, DropReasonNamesRule) {
  PolicySet ps(standard_packet_ontology(), Effect::kPermit);
  ps.add("no-p2p", Effect::kDeny, "proto == 'p2p'");
  auto f = make_packet_filter("fw", true, std::move(ps));
  auto d = f.fn(packet(net::AppProto::kP2p));
  EXPECT_EQ(d.reason, "fw:no-p2p");
}

TEST(PacketAdapter, DefaultDenyNamesDefault) {
  PolicySet ps(standard_packet_ontology(), Effect::kDeny);
  auto f = make_packet_filter("fw", true, std::move(ps));
  EXPECT_EQ(f.fn(packet(net::AppProto::kWeb)).reason, "fw:default");
}

TEST(PacketAdapter, RedirectResolvedThroughResolver) {
  PolicySet ps(standard_packet_ontology(), Effect::kPermit);
  ps.add("grab-mail", Effect::kRedirect, "proto == 'mail'", "application", "mail-trap");
  const net::Address trap{.provider = 9, .subscriber = 9, .host = 9};
  auto f = make_packet_filter("isp", false, std::move(ps),
                              [&](const std::string& label) -> std::optional<net::Address> {
                                if (label == "mail-trap") return trap;
                                return std::nullopt;
                              });
  auto d = f.fn(packet(net::AppProto::kMail));
  EXPECT_EQ(d.action, net::FilterAction::kRedirect);
  ASSERT_TRUE(d.redirect_to.has_value());
  EXPECT_EQ(*d.redirect_to, trap);
}

TEST(PacketAdapter, UnresolvableRedirectFailsClosed) {
  PolicySet ps(standard_packet_ontology(), Effect::kPermit);
  ps.add("grab-mail", Effect::kRedirect, "proto == 'mail'", "application", "nowhere");
  auto f = make_packet_filter("isp", false, std::move(ps));
  EXPECT_EQ(f.fn(packet(net::AppProto::kMail)).action, net::FilterAction::kDrop);
}

TEST(PacketAdapter, EncryptedTrafficEvadesAppPolicyButNotOpacityPolicy) {
  // §VI-A escalation, in policy terms: the app rule stops matching once the
  // packet is encrypted, but a provider can still write an opacity rule —
  // and that rule is visible for what it is.
  PolicySet ps(standard_packet_ontology(), Effect::kPermit);
  ps.add("no-p2p", Effect::kDeny, "proto == 'p2p'", "application");
  ps.add("no-hiding", Effect::kDeny, "opaque", "security");
  auto f = make_packet_filter("isp", false, std::move(ps));
  auto d = f.fn(packet(net::AppProto::kP2p, /*encrypted=*/true));
  EXPECT_EQ(d.action, net::FilterAction::kDrop);
  EXPECT_EQ(d.reason, "isp:no-hiding");  // not the p2p rule
}

TEST(PacketAdapter, StandardOntologyTagsSpaces) {
  auto o = standard_packet_ontology();
  EXPECT_EQ(o.space_of("proto"), "application");
  EXPECT_EQ(o.space_of("tos"), "qos");
  EXPECT_EQ(o.space_of("size"), "economics");
  EXPECT_GE(o.size(), 10u);
}

}  // namespace
}  // namespace tussle::policy
