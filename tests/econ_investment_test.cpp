#include "econ/investment.hpp"

#include <gtest/gtest.h>

#include "econ/open_access.hpp"

namespace tussle::econ {
namespace {

InvestmentConfig base() {
  InvestmentConfig c;
  c.isps = 6;
  c.deploy_cost = 2.0;
  c.qos_revenue = 3.0;
  c.choice_pressure = 1.5;
  c.periods = 400;
  return c;
}

TEST(Investment, NoValueFlowNoChoiceMeansNoDeployment) {
  // The historical outcome (§VII): cost without revenue or fear.
  auto cfg = base();
  cfg.value_flow = false;
  cfg.user_choice = false;
  sim::Rng rng(1);
  auto r = run_investment(cfg, rng);
  EXPECT_DOUBLE_EQ(r.final_deploy_fraction, 0.0);
  EXPECT_FALSE(r.open_service_available);
  EXPECT_DOUBLE_EQ(r.app_price, 1.0);
}

TEST(Investment, ValueFlowAloneSufficesWhenRevenueBeatsCost) {
  auto cfg = base();
  cfg.value_flow = true;
  cfg.user_choice = false;
  sim::Rng rng(2);
  auto r = run_investment(cfg, rng);
  EXPECT_DOUBLE_EQ(r.final_deploy_fraction, 1.0);
  EXPECT_TRUE(r.open_service_available);
}

TEST(Investment, ChoiceAloneCannotRescueUnderwaterDeployment) {
  // Fear without greed: stealing rivals' demand cannot cover a cost that
  // revenue never repays once everyone has deployed.
  auto cfg = base();
  cfg.value_flow = false;
  cfg.user_choice = true;
  cfg.choice_pressure = 1.0;  // less than deploy_cost
  sim::Rng rng(3);
  auto r = run_investment(cfg, rng);
  EXPECT_LT(r.final_deploy_fraction, 0.5);
}

TEST(Investment, FearPlusGreedDeploysFastAndFully) {
  auto cfg = base();
  cfg.value_flow = true;
  cfg.user_choice = true;
  sim::Rng rng(4);
  auto r = run_investment(cfg, rng);
  EXPECT_DOUBLE_EQ(r.final_deploy_fraction, 1.0);
  EXPECT_GT(r.mean_deploy_fraction, 0.9);
}

TEST(Investment, ClosedDeploymentYieldsMonopolyAppPricing) {
  auto cfg = base();
  cfg.value_flow = false;      // cannot sell open QoS...
  cfg.closed_mode = true;      // ...but can bundle it
  cfg.closed_bundle_margin = 4.0;
  sim::Rng rng(5);
  auto r = run_investment(cfg, rng);
  EXPECT_GT(r.final_deploy_fraction, 0.9);  // bundling pays for itself
  EXPECT_FALSE(r.open_service_available);   // but the service is closed
  EXPECT_DOUBLE_EQ(r.app_price, 5.0);       // monopoly bundle price
}

TEST(Investment, OpenDeploymentPricesLowerThanClosed) {
  auto open_cfg = base();
  open_cfg.value_flow = true;
  open_cfg.user_choice = true;
  sim::Rng r1(6), r2(7);
  auto open_r = run_investment(open_cfg, r1);
  auto closed_cfg = base();
  closed_cfg.closed_mode = true;
  auto closed_r = run_investment(closed_cfg, r2);
  EXPECT_LT(open_r.app_price, closed_r.app_price);
}

TEST(Investment, QosModeToString) {
  EXPECT_EQ(to_string(QosMode::kNone), "none");
  EXPECT_EQ(to_string(QosMode::kOpen), "open");
  EXPECT_EQ(to_string(QosMode::kClosed), "closed");
}

TEST(Broadband, DuopolyPricesAboveOpenAccess) {
  BroadbandConfig duo;
  duo.regime = AccessRegime::kFacilityDuopoly;
  BroadbandConfig open;
  open.regime = AccessRegime::kOpenAccess;
  open.service_isps = 6;
  sim::Rng r1(8), r2(8);
  auto duo_r = run_broadband(duo, r1);
  auto open_r = run_broadband(open, r2);
  EXPECT_GT(duo_r.market.mean_price, open_r.market.mean_price);
  EXPECT_GT(duo_r.market.hhi, open_r.market.hhi);
  EXPECT_EQ(duo_r.retail_competitors, 2u);
  EXPECT_EQ(open_r.retail_competitors, 6u);
}

TEST(Broadband, MunicipalFiberCheapestRetail) {
  // Same competition as open access but no wholesale markup in the cost
  // stack → retail price at most open access's.
  BroadbandConfig open;
  open.regime = AccessRegime::kOpenAccess;
  BroadbandConfig muni;
  muni.regime = AccessRegime::kMunicipalFiber;
  sim::Rng r1(9), r2(9);
  auto open_r = run_broadband(open, r1);
  auto muni_r = run_broadband(muni, r2);
  EXPECT_LE(muni_r.market.mean_price, open_r.market.mean_price + 0.1);
  EXPECT_DOUBLE_EQ(muni_r.facility_margin, 0.0);
  EXPECT_DOUBLE_EQ(open_r.facility_margin, 0.5);
}

TEST(Broadband, OpenAccessStillPaysTheWireOwnerSomething) {
  BroadbandConfig cfg;
  cfg.regime = AccessRegime::kOpenAccess;
  cfg.wholesale_markup = 1.0;
  sim::Rng rng(10);
  auto r = run_broadband(cfg, rng);
  EXPECT_DOUBLE_EQ(r.facility_margin, 1.0);
}

TEST(Broadband, RegimeNames) {
  EXPECT_EQ(to_string(AccessRegime::kFacilityDuopoly), "facility-duopoly");
  EXPECT_EQ(to_string(AccessRegime::kOpenAccess), "open-access");
  EXPECT_EQ(to_string(AccessRegime::kMunicipalFiber), "municipal-fiber");
}

}  // namespace
}  // namespace tussle::econ
