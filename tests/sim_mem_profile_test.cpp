#include "sim/mem_profile.hpp"

#include <gtest/gtest.h>

#include "core/sweep.hpp"
#include "net/network.hpp"

namespace tussle {
namespace {

net::Address addr(net::AsId as, std::uint32_t sub, std::uint32_t host) {
  return net::Address{.provider = as, .subscriber = sub, .host = host};
}

/// Same chain the scale-profile golden test uses:
///   A(AS1) --1ms-- B(AS2) --2ms-- C(AS3)
struct ThreeAsChain {
  sim::Simulator sim;
  sim::ShardAuditor audit;
  sim::MemProfiler mem;
  net::Network net{sim};
  net::NodeId a, b, c;
  net::Address addr_a = addr(1, 1, 1);
  net::Address addr_b = addr(2, 1, 1);
  net::Address addr_c = addr(3, 1, 1);
  int delivered = 0;

  explicit ThreeAsChain(bool profiled = true) {
    audit.set_fail_fast(false);  // attribution only, never policing
    sim.set_auditor(&audit);
    if (profiled) sim.set_mem_profiler(&mem);
    a = net.add_node(1);
    b = net.add_node(2);
    c = net.add_node(3);
    net.connect(a, b, 10e6, sim::Duration::millis(1));
    net.connect(b, c, 10e6, sim::Duration::millis(2));
    net.node(a).add_address(addr_a);
    net.node(b).add_address(addr_b);
    net.node(c).add_address(addr_c);
    net.node(a).forwarding().set_default_route(0);
    net.node(b).forwarding().set_default_route(1);
    net.node(c).forwarding().set_default_route(0);
    net.node(c).set_local_handler([this](const net::Packet&) { ++delivered; });
  }

  net::Packet make() {
    net::Packet p;
    p.src = addr_a;
    p.dst = addr_c;
    p.proto = net::AppProto::kWeb;
    p.size_bytes = 1000;
    return p;
  }

  void send_one() {
    sim.schedule(sim::Duration::millis(1), sim::TaskTag{"test", "inject"},
                 [this] { net.node(a).originate(make()); });
    sim.run();
  }
};

std::uint64_t hist_total(const std::map<std::uint32_t, std::uint64_t>& hist) {
  std::uint64_t n = 0;
  for (const auto& [bucket, count] : hist) {
    (void)bucket;
    n += count;
  }
  return n;
}

TEST(MemProfile, GoldenThreeAsChain) {
  ThreeAsChain t;
  t.send_one();
  ASSERT_EQ(t.delivered, 1);

  EXPECT_GE(t.mem.work(), 3u);
  EXPECT_GE(t.mem.events_scheduled(), t.mem.work());
  EXPECT_EQ(t.mem.events_cancelled(), 0u);
  EXPECT_EQ(t.mem.runs(), 1u);

  // Actor registration is the live-bytes floor: nodes and links allocate
  // once and stay resident.
  const auto& actors = t.mem.actors();
  ASSERT_EQ(actors.count("net.node"), 1u);
  EXPECT_EQ(actors.at("net.node").count, 3u);
  EXPECT_EQ(actors.at("net.node").bytes, 3 * sizeof(net::Node));
  ASSERT_EQ(actors.count("net.link"), 1u);
  EXPECT_EQ(actors.at("net.link").count, 2u);
  EXPECT_EQ(t.mem.actor_count(), 5u);
  EXPECT_EQ(t.mem.actor_bytes(), 3 * sizeof(net::Node) + 2 * sizeof(net::Link));

  // Allocation sites: the injected packet was born and freed at delivery
  // (live 0), default routes install no FIB entries, and every scheduled
  // event control block was allocated and every dispatched one freed.
  const auto& sites = t.mem.sites();
  ASSERT_EQ(sites.count("net.packet"), 1u);
  EXPECT_EQ(sites.at("net.packet").allocs, 1u);
  EXPECT_EQ(sites.at("net.packet").frees, 1u);
  EXPECT_EQ(sites.at("net.packet").live(), 0);
  EXPECT_EQ(sites.count("net.fib_entry"), 0u);  // default routes are a field, not an entry
  std::uint64_t event_allocs = 0, event_frees = 0;
  for (const auto& [site, stats] : sites) {
    if (site.rfind("sim.event/", 0) == 0) {
      event_allocs += stats.allocs;
      event_frees += stats.frees;
    }
  }
  EXPECT_EQ(event_allocs, t.mem.events_scheduled());
  EXPECT_EQ(event_frees, t.mem.work());

  // With every transient freed, steady live == the actor floor; the peak
  // saw the in-flight packet and event control blocks on top of it.
  EXPECT_EQ(t.mem.live_bytes(), static_cast<std::int64_t>(t.mem.actor_bytes()));
  EXPECT_GT(t.mem.peak_live_bytes(), t.mem.live_bytes());
  EXPECT_GT(t.mem.live_bytes_per_actor(), 0.0);
  EXPECT_GT(t.mem.allocs_per_event(), 0.0);

  // Exactly one packet lifetime closed, by delivery, after >= 3 ms of
  // propagation (bucket b covers [2^(b-1), 2^b - 1] ns; 3 ms needs b >= 22).
  ASSERT_EQ(hist_total(t.mem.packet_delivered_hist()), 1u);
  EXPECT_EQ(hist_total(t.mem.packet_dropped_hist()), 0u);
  EXPECT_GE(t.mem.packet_delivered_hist().begin()->first, 22u);
  EXPECT_EQ(hist_total(t.mem.event_dispatched_hist()), t.mem.work());

  // Locality: every dispatch chased the base queue indirections, and the
  // forwarding path reported FIB hops and container occupancies.
  const auto& chases = t.mem.chases();
  ASSERT_EQ(chases.count("sim.dispatch"), 1u);
  EXPECT_EQ(chases.at("sim.dispatch").calls, t.mem.work());
  EXPECT_EQ(chases.at("sim.dispatch").hops, t.mem.work() * sim::kDispatchChaseHops);
  ASSERT_EQ(chases.count("net.forward"), 1u);
  EXPECT_GE(chases.at("net.forward").calls, 2u);  // a originates, b forwards
  const auto& occ = t.mem.occupancy();
  ASSERT_EQ(occ.count("sim.event_queue"), 1u);
  EXPECT_EQ(occ.at("sim.event_queue").samples, t.mem.work());
  EXPECT_EQ(occ.count("net.fib"), 1u);
  EXPECT_EQ(occ.count("net.link_queue"), 1u);
  const auto scores = t.mem.locality_scores();
  ASSERT_FALSE(scores.empty());
  bool saw_net_forward = false;
  for (const auto& s : scores) {
    EXPECT_GE(s.score, 0.0);
    if (s.component == "net.forward") saw_net_forward = true;
  }
  EXPECT_TRUE(saw_net_forward);
  EXPECT_EQ(hist_total(t.mem.hops_per_dispatch_hist()), t.mem.work());

  // All three owner shards dispatched, so the footprint attribution
  // covers them.
  const auto& shards = t.mem.shard_mem();
  EXPECT_EQ(shards.count(1), 1u);
  EXPECT_EQ(shards.count(2), 1u);
  EXPECT_EQ(shards.count(3), 1u);

  EXPECT_FALSE(t.mem.timeline().empty());

  const std::string json = t.mem.report_json();
  for (const char* key : {"\"work\"", "\"live_bytes\"", "\"sites\"", "\"actors\"",
                          "\"lifetimes\"", "\"locality\"", "\"chase-churn-v1\"",
                          "\"shards\"", "\"timeline\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(MemProfile, DetachedProfilerStaysInert) {
  ThreeAsChain with(/*profiled=*/true);
  ThreeAsChain without(/*profiled=*/false);
  with.send_one();
  without.send_one();
  EXPECT_EQ(with.delivered, without.delivered);
  EXPECT_EQ(without.sim.mem_profiler(), nullptr);
  EXPECT_EQ(without.mem.work(), 0u);
  EXPECT_EQ(without.mem.runs(), 0u);
  EXPECT_EQ(without.mem.events_scheduled(), 0u);
  EXPECT_EQ(without.mem.live_bytes(), 0);
  EXPECT_TRUE(without.mem.sites().empty());
  EXPECT_TRUE(without.mem.actors().empty());
  // A never-attached profiler still renders a valid (empty) report.
  EXPECT_EQ(without.mem.report_json(), sim::MemProfiler{}.report_json());
}

TEST(MemProfile, CancelledEventClosesLifetimeAndFreesControlBlock) {
  sim::Simulator sim;
  sim::MemProfiler mem;
  sim.set_mem_profiler(&mem);
  bool fired = false;
  const sim::EventId id = sim.schedule_at(sim::SimTime::millis(5),
                                          sim::TaskTag{"test", "doomed"},
                                          [&fired] { fired = true; });
  sim.schedule_at(sim::SimTime::millis(2), sim::TaskTag{"test", "cancel"},
                  [&] { sim.cancel(id); });
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(mem.events_cancelled(), 1u);
  ASSERT_EQ(hist_total(mem.event_cancelled_hist()), 1u);
  // Pending 2 ms before the cancel: 2'000'000 ns lands in bucket 21.
  EXPECT_EQ(mem.event_cancelled_hist().begin()->first, 21u);
  // Both the cancelled and the dispatched control blocks were freed.
  for (const auto& [site, stats] : mem.sites()) {
    if (site.rfind("sim.event/", 0) == 0) {
      EXPECT_EQ(stats.live(), 0) << site;
    }
  }
  EXPECT_EQ(mem.live_bytes(), 0);
}

TEST(MemProfile, TunneledPacketKeepsOneIdentity) {
  ThreeAsChain t;
  // a originates an encapsulated packet: outer dst = b (the tunnel
  // gateway), inner dst = c. b decapsulates and forwards the inner packet,
  // which keeps the wire uid — one identity, one lifetime, end to end.
  t.sim.schedule(sim::Duration::millis(1), sim::TaskTag{"test", "inject"}, [&t] {
    net::Packet inner = t.make();
    net::Packet outer = inner.encapsulate(t.addr_a, t.addr_b);
    t.net.node(t.a).originate(std::move(outer));
  });
  t.sim.run();
  ASSERT_EQ(t.delivered, 1);

  // One birth, one delivery close, no dangling pending identity.
  const auto& sites = t.mem.sites();
  ASSERT_EQ(sites.count("net.packet"), 1u);
  EXPECT_EQ(sites.at("net.packet").allocs, 1u);
  EXPECT_EQ(sites.at("net.packet").frees, 1u);
  EXPECT_EQ(hist_total(t.mem.packet_delivered_hist()), 1u);
  EXPECT_EQ(hist_total(t.mem.packet_dropped_hist()), 0u);
  // The decapsulation itself is transient churn, freed within the event.
  ASSERT_EQ(sites.count("net.packet.decap"), 1u);
  EXPECT_EQ(sites.at("net.packet.decap").allocs, 1u);
  EXPECT_EQ(sites.at("net.packet.decap").live(), 0);
}

TEST(MemProfile, DroppedPacketClosesLifetime) {
  ThreeAsChain t;
  t.net.node(t.b).add_filter(net::PacketFilter{
      .name = "wall",
      .disclosed = true,
      .fn = [](const net::Packet&) { return net::FilterDecision::drop("policy"); }});
  t.send_one();
  ASSERT_EQ(t.delivered, 0);
  EXPECT_EQ(hist_total(t.mem.packet_delivered_hist()), 0u);
  EXPECT_EQ(hist_total(t.mem.packet_dropped_hist()), 1u);
  ASSERT_EQ(t.mem.sites().count("net.packet"), 1u);
  EXPECT_EQ(t.mem.sites().at("net.packet").live(), 0);
}

TEST(MemProfile, MergeIsAssociative) {
  auto record = [](sim::MemProfiler& m, std::uint64_t base, std::uint64_t n) {
    const sim::TaskTag tag{"test", "ev"};
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t id = base + i;
      const auto at = sim::SimTime::millis(static_cast<std::int64_t>(i + 1));
      m.on_schedule(id, sim::SimTime::zero(), at, tag);
      m.begin_event(id, at, static_cast<std::size_t>(n - i), tag);
      m.count_alloc("test.obj", 128);
      m.note_hops("test.chase", 2);
      if (i % 2 == 0) m.count_free("test.obj", 128);
      m.end_event(static_cast<sim::ShardId>(1 + i % 3));
    }
  };
  sim::MemProfiler a1, b1, c1, a2, b2, c2;
  record(a1, 0, 3);
  record(b1, 100, 5);
  record(c1, 200, 2);
  record(a2, 0, 3);
  record(b2, 100, 5);
  record(c2, 200, 2);

  a1.merge(b1);  // (a + b) + c
  a1.merge(c1);
  b2.merge(c2);  // a + (b + c)
  a2.merge(b2);

  EXPECT_EQ(a1.runs(), 3u);
  EXPECT_EQ(a1.report_json(), a2.report_json());
}

core::ScenarioSpec chain_spec(std::size_t replicas) {
  core::ScenarioSpec spec;
  spec.name = "mem-chain";
  spec.replicas = replicas;
  spec.body = [](core::RunContext& ctx) {
    sim::Simulator sim;
    ctx.instrument(sim);
    net::Network net(sim);
    const auto a = net.add_node(1);
    const auto b = net.add_node(2);
    const auto c = net.add_node(3);
    net.connect(a, b, 10e6, sim::Duration::millis(1));
    net.connect(b, c, 10e6, sim::Duration::millis(2));
    net.node(a).add_address(addr(1, 1, 1));
    net.node(c).add_address(addr(3, 1, 1));
    net.node(a).forwarding().set_default_route(0);
    net.node(b).forwarding().set_default_route(1);
    net.node(c).forwarding().set_default_route(0);
    int delivered = 0;
    net.node(c).set_local_handler([&delivered](const net::Packet&) { ++delivered; });
    // Replica-dependent load so runs differ and a mis-ordered merge could
    // not accidentally agree.
    const std::size_t sends = 1 + ctx.run_index() % 3;
    for (std::size_t s = 0; s < sends; ++s) {
      sim.schedule(sim::Duration::millis(static_cast<std::int64_t>(1 + s)),
                   sim::TaskTag{"test", "inject"}, [&net, a] {
                     net::Packet p;
                     p.src = addr(1, 1, 1);
                     p.dst = addr(3, 1, 1);
                     p.proto = net::AppProto::kWeb;
                     p.size_bytes = 1000;
                     net.node(a).originate(std::move(p));
                   });
    }
    ctx.add_events(sim.run());
    ctx.put("delivered", delivered);
  };
  return spec;
}

std::string merged_mem_report(std::size_t jobs, std::size_t shards) {
  core::SweepOptions opts;
  opts.base_seed = 7;
  opts.jobs = jobs;
  opts.mem = true;
  opts.shards = shards;
  const core::SweepResult result = core::run_sweep(chain_spec(8), opts);
  sim::MemProfiler merged;
  for (const auto& r : result.runs) {
    EXPECT_NE(r.mem, nullptr);
    EXPECT_NE(r.audit, nullptr);  // fail-soft auditor auto-attached
    if (r.mem) merged.merge(*r.mem);
  }
  // A recording instance counts as one run. Serial: one per sweep run.
  // Sharded: one per owner lane that dispatched (3 lanes here) — a function
  // of the topology, never of the worker count.
  EXPECT_EQ(merged.runs(), shards == 0 ? 8u : 24u);
  return merged.report_json();
}

TEST(MemProfile, MergedReportByteIdenticalAcrossJobs) {
  EXPECT_EQ(merged_mem_report(/*jobs=*/1, /*shards=*/0),
            merged_mem_report(/*jobs=*/8, /*shards=*/0));
}

TEST(MemProfile, MergedReportByteIdenticalAcrossShards) {
  const std::string one = merged_mem_report(/*jobs=*/1, /*shards=*/1);
  EXPECT_EQ(one, merged_mem_report(/*jobs=*/1, /*shards=*/8));
  // And the two parallelism axes compose.
  EXPECT_EQ(one, merged_mem_report(/*jobs=*/8, /*shards=*/8));
}

TEST(MemProfile, SweepRegistersTimeseriesGauges) {
  core::SweepOptions opts;
  opts.mem = true;
  opts.jobs = 1;
  opts.timeseries_seconds = 0.001;
  core::ScenarioSpec spec;
  spec.name = "mem-gauges";
  spec.replicas = 1;
  spec.body = [](core::RunContext& ctx) {
    ThreeAsChain t(/*profiled=*/false);
    ctx.instrument(t.sim);  // attaches the run's MemProfiler + gauges
    ASSERT_NE(ctx.mem(), nullptr);
    ASSERT_NE(ctx.timeseries(), nullptr);
    ctx.timeseries()->attach(t.sim, sim::SimTime::millis(10));
    t.send_one();
    ctx.add_events(1);
  };
  const core::SweepResult result = core::run_sweep(spec, opts);
  ASSERT_EQ(result.runs.size(), 1u);
  ASSERT_NE(result.runs[0].mem, nullptr);
  EXPECT_GT(result.runs[0].mem->work(), 0u);
  ASSERT_NE(result.runs[0].timeseries, nullptr);
  const auto& store = result.runs[0].timeseries->store();
  const sim::TimeSeries* live = store.find("mem.live_bytes");
  const sim::TimeSeries* depth = store.find("sim.queue_depth");
  ASSERT_NE(live, nullptr);
  ASSERT_NE(depth, nullptr);
  // Samples during the run saw the modeled footprint above zero.
  double max_live = 0;
  for (const double v : live->values()) max_live = std::max(max_live, v);
  EXPECT_GT(max_live, 0.0);
}

TEST(MemProfile, DashboardIsSelfContainedAndStable) {
  ThreeAsChain t;
  t.send_one();
  const std::string html = sim::mem_dashboard(t.mem, "unit & test");
  EXPECT_EQ(html, sim::mem_dashboard(t.mem, "unit & test"));  // pure function
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("unit &amp; test"), std::string::npos);  // title escaped
  for (const char* section : {"Live-bytes timeline", "Allocation sites",
                              "Packet lifetimes", "Event lifetimes",
                              "Locality scores (chase-churn-v1)", "Per-shard footprint"}) {
    EXPECT_NE(html.find(section), std::string::npos) << "missing " << section;
  }
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_EQ(html.find("<script"), std::string::npos);  // zero JS
}

}  // namespace
}  // namespace tussle
