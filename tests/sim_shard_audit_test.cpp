#include "sim/shard_audit.hpp"

#include <gtest/gtest.h>

#include "econ/value_flow.hpp"
#include "net/network.hpp"

namespace tussle {
namespace {

net::Address addr(net::AsId as, std::uint32_t sub, std::uint32_t host) {
  return net::Address{.provider = as, .subscriber = sub, .host = host};
}

/// Two nodes in different ASes joined by one (shared, cross-AS) link —
/// the smallest topology with a shard boundary.
struct TwoAs {
  sim::Simulator sim;
  sim::ShardAuditor audit;
  net::Network net{sim};
  net::NodeId a, b;
  net::Address addr_a = addr(1, 1, 1);
  net::Address addr_b = addr(2, 1, 1);

  explicit TwoAs(bool audited = true) {
    if (audited) sim.set_auditor(&audit);
    a = net.add_node(1);
    b = net.add_node(2);
    net.connect(a, b, 10e6, sim::Duration::millis(1));
    net.node(a).add_address(addr_a);
    net.node(b).add_address(addr_b);
    net.node(a).forwarding().set_default_route(0);
    net.node(b).forwarding().set_default_route(0);
  }

  net::Packet make(net::Address from, net::Address to) {
    net::Packet p;
    p.src = from;
    p.dst = to;
    p.proto = net::AppProto::kWeb;
    p.size_bytes = 1000;
    return p;
  }
};

TEST(ShardAudit, CatchesCrossShardMutatingHandler) {
  TwoAs t;
  // A handler running as AS 1 (it originates from node a, claiming shard 1)
  // then reaches across the boundary and mutates node b's filter chain —
  // exactly the synchronous cross-shard write PDES forbids.
  t.sim.schedule(sim::Duration::millis(1), sim::TaskTag{"test", "bad-handler"}, [&] {
    t.net.node(t.a).originate(t.make(t.addr_a, t.addr_b));
    t.net.node(t.b).add_filter(
        {"rogue", true, [](const net::Packet&) { return net::FilterDecision::accept(); }});
  });
  EXPECT_THROW(t.sim.run(), sim::ShardViolation);
  ASSERT_EQ(t.audit.violations().size(), 1u);
  const sim::ShardAccess& v = t.audit.violations().front();
  EXPECT_EQ(v.component, "net.node");
  EXPECT_EQ(v.owner, 2u);
  EXPECT_EQ(v.accessor, 1u);
  EXPECT_EQ(v.what, "add_filter");
  EXPECT_EQ(v.event_kind, "bad-handler");
  // The causal report names the offending mutator and both shards.
  const std::string report = t.audit.describe(v);
  EXPECT_NE(report.find("add_filter"), std::string::npos);
  EXPECT_NE(report.find("owned by shard 2"), std::string::npos);
  EXPECT_NE(report.find("from shard 1"), std::string::npos);
}

TEST(ShardAudit, CollectsInsteadOfThrowingWhenFailFastOff) {
  TwoAs t;
  t.audit.set_fail_fast(false);
  t.sim.schedule(sim::Duration::millis(1), sim::TaskTag{"test", "bad-handler"}, [&] {
    t.net.node(t.a).originate(t.make(t.addr_a, t.addr_b));
    t.net.node(t.b).add_filter(
        {"rogue", true, [](const net::Packet&) { return net::FilterDecision::accept(); }});
  });
  EXPECT_NO_THROW(t.sim.run());
  EXPECT_EQ(t.audit.violations().size(), 1u);
}

TEST(ShardAudit, CrossShardEntryIsAViolationToo) {
  TwoAs t;
  // Claiming shard 1, then synchronously running node b's receive path is a
  // cross-shard *entry*, flagged even though the first touch is not a
  // declared mutator.
  t.sim.schedule(sim::Duration::millis(1), sim::TaskTag{"test", "bad-entry"}, [&] {
    t.net.node(t.a).originate(t.make(t.addr_a, t.addr_b));
    t.net.node(t.b).receive(t.make(t.addr_a, t.addr_b), 0);
  });
  EXPECT_THROW(t.sim.run(), sim::ShardViolation);
  ASSERT_EQ(t.audit.violations().size(), 1u);
  EXPECT_EQ(t.audit.violations().front().what, "enter");
}

TEST(ShardAudit, CleanTwoAsDeliveryPasses) {
  TwoAs t;
  int delivered = 0;
  // set_local_handler is an audited mutator, but it runs at setup — outside
  // any event — which the auditor allows.
  t.net.node(t.b).set_local_handler([&](const net::Packet&) { ++delivered; });
  t.sim.schedule(sim::Duration::millis(1), sim::TaskTag{"test", "inject"},
                 [&] { t.net.node(t.a).originate(t.make(t.addr_a, t.addr_b)); });
  EXPECT_NO_THROW(t.sim.run());
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(t.audit.violations().empty());
  EXPECT_GT(t.audit.events_audited(), 0u);
  EXPECT_GT(t.audit.mutations_checked(), 0u);
  EXPECT_GT(t.audit.claims(), 0u);
  // Both ASes registered; the cross-AS link and merge sinks are shared.
  EXPECT_EQ(t.audit.shard_count(), 2u);
}

TEST(ShardAudit, DisabledAuditorIsInert) {
  TwoAs t(/*audited=*/false);
  int delivered = 0;
  t.net.node(t.b).set_local_handler([&](const net::Packet&) { ++delivered; });
  t.sim.schedule(sim::Duration::millis(1), sim::TaskTag{"test", "inject"}, [&] {
    t.net.node(t.a).originate(t.make(t.addr_a, t.addr_b));
    // Without an auditor this cross-shard write goes unchecked (the hook
    // is a null-pointer branch), so the run must behave exactly as before
    // the auditor existed.
    t.net.node(t.b).add_filter(
        {"rogue", true, [](const net::Packet&) { return net::FilterDecision::accept(); }});
  });
  EXPECT_EQ(t.net.auditor(), nullptr);
  EXPECT_NO_THROW(t.sim.run());
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(t.audit.events_audited(), 0u);
  EXPECT_EQ(t.audit.mutations_checked(), 0u);
}

TEST(ShardAudit, ControlEventIsTalliedNotChecked) {
  TwoAs t;
  // Failure injection legitimately touches the whole topology; declaring
  // the event as control work turns the checks into a tally the report
  // attributes to the named barrier phase.
  t.sim.schedule(sim::Duration::millis(1), sim::TaskTag{"test", "failure"}, [&] {
    t.sim.auditor()->declare_control_event("link-failure");
    t.net.node(t.b).add_filter(
        {"quarantine", true,
         [](const net::Packet&) { return net::FilterDecision::drop("failure drill"); }});
  });
  EXPECT_NO_THROW(t.sim.run());
  EXPECT_TRUE(t.audit.violations().empty());
  const std::string json = t.audit.report_json();
  EXPECT_NE(json.find("link-failure"), std::string::npos);
  EXPECT_NE(json.find("net.node/add_filter"), std::string::npos);
}

TEST(ShardAudit, SharedLedgerIsTalliedPerShard) {
  TwoAs t;
  econ::Ledger ledger;
  ledger.set_auditor(&t.audit);
  // A transfer from inside AS 1's event: tallied under shard 1, no failure
  // — the ledger is declared shared by design.
  t.sim.schedule(sim::Duration::millis(1), sim::TaskTag{"test", "pay"}, [&] {
    t.net.node(t.a).originate(t.make(t.addr_a, t.addr_b));
    ledger.transfer("user:1", "isp:2", 1.0, "transit");
  });
  EXPECT_NO_THROW(t.sim.run());
  EXPECT_TRUE(t.audit.violations().empty());
  const std::string json = t.audit.report_json();
  EXPECT_NE(json.find("econ.ledger"), std::string::npos);
}

TEST(ShardAudit, ReportIsDeterministicAcrossRuns) {
  auto run_once = [] {
    TwoAs t;
    int delivered = 0;
    t.net.node(t.b).set_local_handler([&](const net::Packet&) { ++delivered; });
    t.sim.schedule(sim::Duration::millis(1), sim::TaskTag{"test", "inject"},
                   [&] { t.net.node(t.a).originate(t.make(t.addr_a, t.addr_b)); });
    t.sim.run();
    return t.audit.report_json();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// Regression: the shard context must close when run() drains. Benches are
// phase-structured — setup, run(), more setup, run() — and the second setup
// batch used to inherit the *last event's* claimed shard and time, turning
// legal topology-wide wiring into phantom violations.
TEST(ShardAudit, SetupBetweenRunsIsNotInEvent) {
  TwoAs t;
  t.sim.schedule(sim::Duration::millis(1), sim::TaskTag{"test", "inject"},
                 [&] { t.net.node(t.a).originate(t.make(t.addr_a, t.addr_b)); });
  t.sim.run();
  // Phase-two setup touches both shards back to back, outside any event.
  EXPECT_NO_THROW({
    t.net.node(t.a).originate(t.make(t.addr_a, t.addr_b));
    t.net.node(t.b).add_filter(
        {"phase2", true, [](const net::Packet&) { return net::FilterDecision::accept(); }});
  });
  EXPECT_NO_THROW(t.sim.run());
  EXPECT_TRUE(t.audit.violations().empty());
}

TEST(ShardAudit, MergeFoldsTallies) {
  sim::ShardAuditor total;
  for (int i = 0; i < 2; ++i) {
    TwoAs t;
    t.sim.schedule(sim::Duration::millis(1), sim::TaskTag{"test", "inject"},
                   [&] { t.net.node(t.a).originate(t.make(t.addr_a, t.addr_b)); });
    t.sim.run();
    total.merge(t.audit);
  }
  EXPECT_GT(total.events_audited(), 0u);
  EXPECT_EQ(total.shard_count(), 2u);
  // Two runs' packet-id tallies folded: the report shows the sink once,
  // with the counts summed, not duplicated entries.
  const std::string json = total.report_json();
  const std::size_t first = json.find("net.packet_ids");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(json.find("net.packet_ids", first + 1), std::string::npos);
}

// Regression for the shared-state fixes that rode along with the auditor:
// each Simulator now owns its Tracer, so two concurrent simulations can
// never interleave records through the process-global instance.
TEST(ShardAudit, SimulatorsOwnDistinctTracers) {
  sim::Simulator s1, s2;
  EXPECT_NE(&s1.tracer(), &s2.tracer());
  EXPECT_NE(&s1.tracer(), &sim::Tracer::global());
  s1.tracer().enable(true);
  EXPECT_TRUE(s1.tracer().enabled());
  EXPECT_FALSE(s2.tracer().enabled());
}

}  // namespace
}  // namespace tussle
