#include "apps/stego.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "routing/link_state.hpp"

namespace tussle::apps {
namespace {

using net::Address;
using net::NodeId;

TEST(Stego, WrappingHidesCompletely) {
  net::Packet p;
  p.proto = net::AppProto::kP2p;
  net::Packet s = steganographize(p, net::AppProto::kWeb);
  EXPECT_EQ(s.observable_proto(), net::AppProto::kWeb);
  EXPECT_FALSE(s.visibly_opaque());  // unlike encryption, hiding is hidden
  EXPECT_EQ(effective_proto(s), net::AppProto::kP2p);
  EXPECT_EQ(effective_proto(p), net::AppProto::kP2p);
}

TEST(Stego, EncryptionVsSteganographyVisibility) {
  net::Packet enc;
  enc.proto = net::AppProto::kP2p;
  enc.encrypted = true;
  net::Packet p2p;
  p2p.proto = net::AppProto::kP2p;
  net::Packet steg = steganographize(p2p, net::AppProto::kWeb);
  EXPECT_TRUE(enc.visibly_opaque());    // fn.14/§V-B-1: hiding is detectable
  EXPECT_FALSE(steg.visibly_opaque());  // fn.17: the next escalation isn't
}

struct Fixture {
  sim::Simulator sim{43};
  net::Network net{sim};
  std::vector<NodeId> ids;
  std::vector<Address> addrs;

  Fixture() {
    ids = net::build_star(net, 2, 1, net::LinkSpec{});
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Address a{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
      net.node(ids[i]).add_address(a);
      addrs.push_back(a);
    }
    routing::LinkState ls(net);
    ls.install_routes(ids);
  }

  void blast(int n, bool stego) {
    for (int i = 0; i < n; ++i) {
      sim.schedule(sim::Duration::millis(2 * i), [this, stego]() {
        net::Packet p;
        p.src = addrs[1];
        p.dst = addrs[2];
        p.proto = net::AppProto::kP2p;
        if (stego) p = steganographize(std::move(p), net::AppProto::kWeb);
        else p.proto = net::AppProto::kWeb;  // genuinely innocent web
        net.node(ids[1]).originate(std::move(p));
      });
    }
  }
};

TEST(StegoDetector, CatchesConfiguredFraction) {
  Fixture f;
  auto stats = std::make_shared<StegoDetectorStats>();
  f.net.node(f.ids[0]).add_filter(
      make_stego_detector(f.net, "classifier", net::AppProto::kWeb, 0.7, 0.0, stats));
  f.blast(200, /*stego=*/true);
  f.sim.run();
  EXPECT_NEAR(static_cast<double>(stats->true_positives) / 200.0, 0.7, 0.08);
  EXPECT_EQ(stats->false_positives, 0u);
  EXPECT_EQ(stats->true_positives + stats->missed, 200u);
}

TEST(StegoDetector, FalsePositivesHurtInnocents) {
  Fixture f;
  auto stats = std::make_shared<StegoDetectorStats>();
  f.net.node(f.ids[0]).add_filter(
      make_stego_detector(f.net, "classifier", net::AppProto::kWeb, 0.7, 0.1, stats));
  f.blast(200, /*stego=*/false);
  f.sim.run();
  EXPECT_NEAR(static_cast<double>(stats->false_positives) / 200.0, 0.1, 0.06);
  EXPECT_EQ(f.net.counters().delivered.value(),
            200 - static_cast<int>(stats->false_positives));
}

TEST(StegoDetector, IgnoresOtherCovers) {
  Fixture f;
  auto stats = std::make_shared<StegoDetectorStats>();
  f.net.node(f.ids[0]).add_filter(
      make_stego_detector(f.net, "classifier", net::AppProto::kMail, 1.0, 1.0, stats));
  f.blast(50, /*stego=*/true);  // cover is web, detector watches mail
  f.sim.run();
  EXPECT_EQ(stats->true_positives + stats->false_positives, 0u);
  EXPECT_EQ(f.net.counters().delivered.value(), 50);
}

TEST(StegoDetector, DetectorIsUndisclosed) {
  Fixture f;
  f.net.node(f.ids[0]).add_filter(
      make_stego_detector(f.net, "classifier", net::AppProto::kWeb, 0.5, 0.01));
  EXPECT_TRUE(f.net.node(f.ids[0]).disclosed_filter_names().empty());
}

TEST(Stego, DefeatsOpacityBan) {
  // fn.17 end-to-end: a filter that drops everything opaque cannot see
  // steganographic traffic at all.
  Fixture f;
  f.net.node(f.ids[0]).add_filter(net::PacketFilter{
      .name = "opacity-ban",
      .disclosed = true,
      .fn = [](const net::Packet& p) {
        return p.visibly_opaque() ? net::FilterDecision::drop("no-hiding")
                                  : net::FilterDecision::accept();
      }});
  net::Packet enc;
  enc.src = f.addrs[1];
  enc.dst = f.addrs[2];
  enc.proto = net::AppProto::kP2p;
  enc.encrypted = true;
  f.net.node(f.ids[1]).originate(std::move(enc));
  net::Packet steg;
  steg.src = f.addrs[1];
  steg.dst = f.addrs[2];
  steg.proto = net::AppProto::kP2p;
  f.net.node(f.ids[1]).originate(steganographize(std::move(steg), net::AppProto::kWeb));
  f.sim.run();
  EXPECT_EQ(f.net.counters().dropped_filter.value(), 1);  // the encrypted one
  EXPECT_EQ(f.net.counters().delivered.value(), 1);       // the stego one
}

}  // namespace
}  // namespace tussle::apps
