#include "apps/transport.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "routing/link_state.hpp"

namespace tussle::apps {
namespace {

using net::Address;
using net::NodeId;

/// Dumbbell with addressed endpoints and routes.
struct Fixture {
  sim::Simulator sim{37};
  net::Network net{sim};
  net::Dumbbell d;
  std::vector<Address> src_addrs;
  std::vector<Address> sink_addrs;
  std::vector<std::shared_ptr<AppMux>> src_muxes;
  std::vector<std::shared_ptr<AppMux>> sink_muxes;

  explicit Fixture(double bottleneck_bps = 4e6, std::size_t pairs = 2) {
    net::LinkSpec edge;
    edge.bandwidth_bps = 100e6;
    edge.propagation = sim::Duration::millis(1);
    net::LinkSpec bottleneck;
    bottleneck.bandwidth_bps = bottleneck_bps;
    bottleneck.propagation = sim::Duration::millis(10);
    bottleneck.queue_capacity = 32;
    d = net::build_dumbbell(net, pairs, edge, bottleneck);
    std::uint32_t sub = 0;
    std::vector<NodeId> all = {d.left_router, d.right_router};
    auto addr_of = [&](NodeId n) {
      Address a{.provider = 1, .subscriber = sub++, .host = 1};
      net.node(n).add_address(a);
      all.push_back(n);
      return a;
    };
    addr_of(d.left_router);
    all.pop_back();  // routers already in `all`
    addr_of(d.right_router);
    all.pop_back();
    for (NodeId n : d.sources) {
      src_addrs.push_back(addr_of(n));
      src_muxes.push_back(AppMux::install(net.node(n)));
    }
    for (NodeId n : d.sinks) {
      sink_addrs.push_back(addr_of(n));
      sink_muxes.push_back(AppMux::install(net.node(n)));
    }
    routing::LinkState ls(net);
    ls.install_routes(all);
  }
};

TEST(AimdFlow, CompletesTransferReliably) {
  Fixture f;
  FlowSink sink(f.net, f.d.sinks[0], f.sink_addrs[0], f.sink_muxes[0], net::AppProto::kWeb);
  AimdConfig cfg;
  cfg.total_segments = 100;
  AimdFlow flow(f.net, f.d.sources[0], f.src_addrs[0], f.sink_addrs[0], f.src_muxes[0],
                net::AppProto::kWeb, 1, cfg);
  flow.start();
  f.sim.run();
  EXPECT_TRUE(flow.finished());
  EXPECT_EQ(sink.segments_received(), 100u);
  EXPECT_GT(flow.goodput_bps(), 0.0);
}

TEST(AimdFlow, SurvivesQueueLossViaRetransmission) {
  // Tiny bottleneck queue forces drops; Go-Back-N must still complete.
  Fixture f(/*bottleneck_bps=*/1e6);
  FlowSink sink(f.net, f.d.sinks[0], f.sink_addrs[0], f.sink_muxes[0], net::AppProto::kWeb);
  AimdConfig cfg;
  cfg.total_segments = 150;
  cfg.initial_ssthresh = 1000;  // slow-start straight into the wall
  AimdFlow flow(f.net, f.d.sources[0], f.src_addrs[0], f.sink_addrs[0], f.src_muxes[0],
                net::AppProto::kWeb, 1, cfg);
  flow.start();
  f.sim.run();
  EXPECT_TRUE(flow.finished());
  EXPECT_GT(flow.timeouts(), 0u);
  EXPECT_GT(flow.retransmissions(), 0u);
  EXPECT_EQ(sink.segments_received(), 150u);
}

TEST(AimdFlow, GoodputBoundedByBottleneck) {
  Fixture f(/*bottleneck_bps=*/2e6);
  FlowSink sink(f.net, f.d.sinks[0], f.sink_addrs[0], f.sink_muxes[0], net::AppProto::kWeb);
  AimdConfig cfg;
  cfg.total_segments = 300;
  AimdFlow flow(f.net, f.d.sources[0], f.src_addrs[0], f.sink_addrs[0], f.src_muxes[0],
                net::AppProto::kWeb, 1, cfg);
  flow.start();
  f.sim.run();
  ASSERT_TRUE(flow.finished());
  // bytes/s ≤ 2e6/8 plus a little slack for header-free accounting.
  EXPECT_LT(flow.goodput_bps(), 2e6 / 8 * 1.1);
  EXPECT_GT(flow.goodput_bps(), 2e6 / 8 * 0.3);  // and not pathologically low
}

TEST(AimdFlow, TwoCompliantFlowsShareReasonably) {
  Fixture f(/*bottleneck_bps=*/4e6, /*pairs=*/2);
  FlowSink s0(f.net, f.d.sinks[0], f.sink_addrs[0], f.sink_muxes[0], net::AppProto::kWeb);
  FlowSink s1(f.net, f.d.sinks[1], f.sink_addrs[1], f.sink_muxes[1], net::AppProto::kWeb);
  AimdConfig cfg;
  cfg.total_segments = 200;
  AimdFlow a(f.net, f.d.sources[0], f.src_addrs[0], f.sink_addrs[0], f.src_muxes[0],
             net::AppProto::kWeb, 1, cfg);
  AimdFlow b(f.net, f.d.sources[1], f.src_addrs[1], f.sink_addrs[1], f.src_muxes[1],
             net::AppProto::kWeb, 2, cfg);
  a.start();
  b.start();
  f.sim.run();
  ASSERT_TRUE(a.finished());
  ASSERT_TRUE(b.finished());
  const double ga = a.goodput_bps(), gb = b.goodput_bps();
  EXPECT_LT(std::max(ga, gb) / std::min(ga, gb), 3.0);  // no starvation
}

TEST(AimdFlow, AggressiveSenderStarvesCompliantAtPacketLevel) {
  // E12's claim, packet by packet: the non-backing-off sender wins.
  Fixture f(/*bottleneck_bps=*/2e6, /*pairs=*/2);
  FlowSink s0(f.net, f.d.sinks[0], f.sink_addrs[0], f.sink_muxes[0], net::AppProto::kWeb);
  FlowSink s1(f.net, f.d.sinks[1], f.sink_addrs[1], f.sink_muxes[1], net::AppProto::kWeb);
  AimdConfig compliant;
  compliant.total_segments = 150;
  AimdConfig cheater = compliant;
  cheater.aggressive = true;
  // A *competent* cheater sizes its window to keep the bottleneck queue
  // (capacity 32) nearly full without overflowing on its own traffic.
  cheater.aggressive_window = 24;
  AimdFlow good(f.net, f.d.sources[0], f.src_addrs[0], f.sink_addrs[0], f.src_muxes[0],
                net::AppProto::kWeb, 1, compliant);
  AimdFlow bad(f.net, f.d.sources[1], f.src_addrs[1], f.sink_addrs[1], f.src_muxes[1],
               net::AppProto::kWeb, 2, cheater);
  good.start();
  bad.start();
  f.sim.run();
  ASSERT_TRUE(good.finished());
  ASSERT_TRUE(bad.finished());
  EXPECT_GT(bad.goodput_bps(), good.goodput_bps() * 1.5);
}

TEST(AimdFlow, AimdWindowRespondsToCongestion) {
  Fixture f(/*bottleneck_bps=*/1e6);
  FlowSink sink(f.net, f.d.sinks[0], f.sink_addrs[0], f.sink_muxes[0], net::AppProto::kWeb);
  AimdConfig cfg;
  cfg.total_segments = 200;
  cfg.initial_ssthresh = 10000;
  AimdFlow flow(f.net, f.d.sources[0], f.src_addrs[0], f.sink_addrs[0], f.src_muxes[0],
                net::AppProto::kWeb, 1, cfg);
  flow.start();
  f.sim.run();
  ASSERT_TRUE(flow.finished());
  // The final window must be far below the unchecked slow-start trajectory.
  EXPECT_LT(flow.final_cwnd(), 100.0);
}

}  // namespace
}  // namespace tussle::apps
