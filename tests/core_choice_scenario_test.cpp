#include <gtest/gtest.h>

#include "core/choice.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "core/tussle_space.hpp"

#include <sstream>

namespace tussle::core {
namespace {

TEST(ChoicePoint, RequiresAlternatives) {
  EXPECT_THROW(ChoicePoint("empty", {}), std::invalid_argument);
}

TEST(ChoicePoint, SelectAndQuery) {
  ChoicePoint cp("smtp-relay", {"relay-a", "relay-b"});
  cp.select("alice", "relay-a");
  EXPECT_EQ(cp.selection_of("alice"), "relay-a");
  EXPECT_TRUE(cp.has_selected("alice"));
  EXPECT_FALSE(cp.has_selected("bob"));
  EXPECT_THROW(cp.selection_of("bob"), std::out_of_range);
  EXPECT_THROW(cp.select("alice", "relay-z"), std::invalid_argument);
  cp.select("alice", "relay-b");  // re-selection replaces
  EXPECT_EQ(cp.selection_of("alice"), "relay-b");
  EXPECT_EQ(cp.selector_count(), 1u);
}

TEST(ChoicePoint, ChoiceIndexZeroWhenUnanimous) {
  ChoicePoint cp("isp", {"telco", "cable"});
  for (int i = 0; i < 10; ++i) cp.select("u" + std::to_string(i), "telco");
  EXPECT_DOUBLE_EQ(cp.choice_index(), 0.0);
}

TEST(ChoicePoint, ChoiceIndexOneWhenEven) {
  ChoicePoint cp("isp", {"telco", "cable"});
  for (int i = 0; i < 10; ++i) cp.select("u" + std::to_string(i), i % 2 ? "telco" : "cable");
  EXPECT_NEAR(cp.choice_index(), 1.0, 1e-12);
}

TEST(ChoicePoint, TallyCountsAllAlternatives) {
  ChoicePoint cp("isp", {"a", "b", "c"});
  cp.select("u1", "a");
  cp.select("u2", "a");
  cp.select("u3", "b");
  auto t = cp.tally();
  EXPECT_EQ(t.at("a"), 2u);
  EXPECT_EQ(t.at("b"), 1u);
  EXPECT_EQ(t.at("c"), 0u);
  EXPECT_GT(cp.choice_index(), 0.0);
  EXPECT_LT(cp.choice_index(), 1.0);
}

TEST(OutcomeVariation, ZeroForIdenticalOutcomes) {
  EXPECT_DOUBLE_EQ(outcome_variation({3, 3, 3}), 0.0);
  EXPECT_DOUBLE_EQ(outcome_variation({5}), 0.0);
}

TEST(OutcomeVariation, GrowsWithDispersion) {
  const double low = outcome_variation({10, 11, 9});
  const double high = outcome_variation({1, 20, 40});
  EXPECT_GT(high, low);
  EXPECT_GT(low, 0.0);
  EXPECT_LE(high, 1.0);
}

namespace {
// The single-body experiment shape the old Scenario shim wrapped: a
// one-point spec whose body draws from the run's RNG stream.
ScenarioSpec draw_spec(const char* key) {
  ScenarioSpec spec;
  spec.name = "demo";
  spec.replicas = 1;
  spec.body = [key](RunContext& ctx) { ctx.put(key, ctx.rng().uniform()); };
  return spec;
}

double one_draw(std::uint64_t seed) {
  SweepOptions opts;
  opts.base_seed = seed;
  opts.jobs = 1;
  return run_sweep(draw_spec("draw"), opts).runs.at(0).metrics.get("draw");
}
}  // namespace

TEST(ScenarioSpec, RunsDeterministically) {
  EXPECT_DOUBLE_EQ(one_draw(3), one_draw(3));
  EXPECT_NE(one_draw(3), one_draw(4));
}

TEST(ScenarioSpec, ReplicationAggregates) {
  SweepOptions opts;
  opts.base_seed = 1;
  opts.replicas = 50;
  auto m = run_sweep(draw_spec("x"), opts).aggregate();
  EXPECT_NEAR(m.get("x.mean"), 0.5, 0.15);
  EXPECT_GT(m.get("x.stddev"), 0.0);
  EXPECT_GE(m.get("x.min"), 0.0);
  EXPECT_LE(m.get("x.max"), 1.0);
  EXPECT_LT(m.get("x.min"), m.get("x.max"));
  EXPECT_GE(m.get("x.p50"), m.get("x.min"));
  EXPECT_LE(m.get("x.p50"), m.get("x.max"));
}

TEST(ScenarioSpec, SingleRunMatchesSweepStream) {
  // A one-run sweep and a replicated sweep at the same base seed see the
  // same run-index-0 RNG stream: run 0's draw is invariant to replica count.
  SweepOptions one;
  one.base_seed = 9;
  one.jobs = 1;
  SweepOptions many;
  many.base_seed = 9;
  many.replicas = 8;
  const auto single = run_sweep(draw_spec("draw"), one);
  const auto sweep = run_sweep(draw_spec("draw"), many);
  EXPECT_DOUBLE_EQ(single.runs.at(0).metrics.get("draw"),
                   sweep.runs.at(0).metrics.get("draw"));
}

TEST(RunRegional, VariationAcrossRegions) {
  auto out = run_regional({0.0, 0.5, 1.0},
                          [](double strictness, sim::Rng&) { return 10.0 * (1 - strictness); });
  ASSERT_EQ(out.per_region.size(), 3u);
  EXPECT_DOUBLE_EQ(out.per_region[0], 10.0);
  EXPECT_GT(out.variation, 0.3);
}

TEST(TussleMap, EntanglementDetection) {
  TussleMap map;
  map.add_mechanism("tos-bits", {"qos"});
  map.add_mechanism("port-based-qos", {"qos", "application"});
  auto entangled = map.entangled_mechanisms();
  ASSERT_EQ(entangled.size(), 1u);
  EXPECT_EQ(entangled[0].name, "port-based-qos");
  EXPECT_DOUBLE_EQ(map.entanglement_ratio(), 0.5);
  EXPECT_TRUE(map.has_space("application"));  // auto-declared
}

TEST(TussleMap, ImportsPolicyCouplings) {
  policy::Ontology o;
  o.declare("proto", policy::ValueType::kString, "application");
  o.declare("tos", policy::ValueType::kString, "qos");
  policy::PolicySet rules(o, policy::Effect::kPermit);
  rules.add("qos-by-app", policy::Effect::kPermit, "proto == 'voip' and tos == 'premium'",
            "qos");
  rules.add("pure-qos", policy::Effect::kDeny, "tos == 'premium'", "qos");
  TussleMap map;
  map.import_policy_couplings("fw", rules);
  EXPECT_DOUBLE_EQ(map.entanglement_ratio(), 0.5);
  ASSERT_EQ(map.entangled_mechanisms().size(), 1u);
  EXPECT_EQ(map.entangled_mechanisms()[0].name, "fw:qos-by-app");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), 22.25});
  std::ostringstream os;
  t.print(os, 2);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.25"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsWrongWidthRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), std::invalid_argument);
}

TEST(ExperimentHeader, ContainsIdAndClaim) {
  std::ostringstream os;
  print_experiment_header(os, "E5", "§VII", "QoS fails without value flow");
  EXPECT_NE(os.str().find("E5"), std::string::npos);
  EXPECT_NE(os.str().find("value flow"), std::string::npos);
}

}  // namespace
}  // namespace tussle::core
