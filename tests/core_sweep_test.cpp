// The sweep engine's determinism contract: bit-identical output at any
// --jobs, run-index RNG streams, grid enumeration, replica edge cases, and
// the scenario registry.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <stdexcept>

#include "core/sweep.hpp"
#include "sim/metric_registry.hpp"
#include "sim/random.hpp"

namespace tussle::core {
namespace {

TEST(ParamPoint, SetGetLabel) {
  ParamPoint p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.label(), "");
  p.set("rate", 0.25);
  p.set("mode", 2);
  EXPECT_DOUBLE_EQ(p.get("rate"), 0.25);
  EXPECT_DOUBLE_EQ(p.get("absent", 7.0), 7.0);
  EXPECT_TRUE(p.has("mode"));
  EXPECT_FALSE(p.has("absent"));
  EXPECT_THROW(p.get("absent"), std::out_of_range);
  EXPECT_EQ(p.label(), "rate=0.25,mode=2");
}

TEST(ParamGrid, EnumeratesCartesianProductFirstAxisSlowest) {
  ParamGrid g;
  g.axis("a", {1, 2}).axis("b", {10, 20, 30});
  EXPECT_EQ(g.axis_count(), 2u);
  EXPECT_EQ(g.point_count(), 6u);
  auto pts = g.points();
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_DOUBLE_EQ(pts[0].get("a"), 1);
  EXPECT_DOUBLE_EQ(pts[0].get("b"), 10);
  EXPECT_DOUBLE_EQ(pts[1].get("b"), 20);
  EXPECT_DOUBLE_EQ(pts[2].get("b"), 30);
  EXPECT_DOUBLE_EQ(pts[3].get("a"), 2);
  EXPECT_DOUBLE_EQ(pts[3].get("b"), 10);
  EXPECT_DOUBLE_EQ(pts[5].get("a"), 2);
  EXPECT_DOUBLE_EQ(pts[5].get("b"), 30);
}

TEST(ParamGrid, EmptyGridYieldsOneEmptyPoint) {
  ParamGrid g;
  EXPECT_EQ(g.point_count(), 1u);
  auto pts = g.points();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_TRUE(pts[0].empty());
}

TEST(ParamGrid, RejectsDuplicateAndEmptyAxes) {
  ParamGrid g;
  g.axis("a", {1});
  EXPECT_THROW(g.axis("a", {2}), std::invalid_argument);
  EXPECT_THROW(g.axis("b", {}), std::invalid_argument);
}

TEST(RngStream, DeterministicAndIndexSensitive) {
  sim::Rng a = sim::Rng::stream(42, 7);
  sim::Rng b = sim::Rng::stream(42, 7);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_EQ(a.next_u64(), b.next_u64());
  sim::Rng c = sim::Rng::stream(42, 8);
  sim::Rng d = sim::Rng::stream(43, 7);
  sim::Rng e = sim::Rng::stream(42, 7);
  const auto first = e.next_u64();
  EXPECT_NE(c.next_u64(), first);
  EXPECT_NE(d.next_u64(), first);
}

TEST(RngStream, AdjacentStreamsAreUncorrelated) {
  // Crude independence check: correlation of uniform draws from adjacent
  // stream indices should be near zero.
  const int n = 4096;
  sim::Rng a = sim::Rng::stream(1, 0);
  sim::Rng b = sim::Rng::stream(1, 1);
  double sa = 0, sb = 0, sab = 0, saa = 0, sbb = 0;
  for (int i = 0; i < n; ++i) {
    const double x = a.uniform();
    const double y = b.uniform();
    sa += x;
    sb += y;
    sab += x * y;
    saa += x * x;
    sbb += y * y;
  }
  const double cov = sab / n - (sa / n) * (sb / n);
  const double var_a = saa / n - (sa / n) * (sa / n);
  const double var_b = sbb / n - (sb / n) * (sb / n);
  const double corr = cov / std::sqrt(var_a * var_b);
  EXPECT_LT(std::fabs(corr), 0.05);
}

ScenarioSpec noisy_spec() {
  ScenarioSpec spec;
  spec.name = "noisy";
  spec.grid.axis("scale", {1, 2, 3});
  spec.replicas = 5;
  spec.body = [](RunContext& ctx) {
    double acc = 0;
    for (int i = 0; i < 1000; ++i) acc += ctx.rng().uniform();
    ctx.put("sum", acc * ctx.param("scale"));
    ctx.put("replica", static_cast<double>(ctx.replica()));
    ctx.note("run " + std::to_string(ctx.run_index()));
    ctx.add_events(3);
  };
  return spec;
}

/// Publishes a sweep's per-point aggregates the way the bench harness does
/// and renders the snapshot to JSON.
std::string metrics_json(const SweepResult& res) {
  sim::MetricRegistry reg;
  for (std::size_t p = 0; p < res.points.size(); ++p) {
    std::string prefix = res.name;
    const std::string label = res.points[p].label();
    if (!label.empty()) prefix += "." + label;
    const sim::MetricSet agg = res.aggregate(p);
    for (const auto& [key, value] : agg.items()) {
      reg.gauge(prefix + "." + key, value);
    }
  }
  return reg.snapshot().to_json();
}

TEST(RunSweep, BitIdenticalAcrossJobCounts) {
  const ScenarioSpec spec = noisy_spec();
  SweepOptions serial;
  serial.base_seed = 17;
  serial.jobs = 1;
  SweepOptions wide = serial;
  wide.jobs = 8;

  const SweepResult r1 = run_sweep(spec, serial);
  const SweepResult r8 = run_sweep(spec, wide);
  ASSERT_EQ(r1.runs.size(), 15u);
  ASSERT_EQ(r8.runs.size(), 15u);
  // Byte-for-byte identical metric reports, not just numerically close.
  EXPECT_EQ(metrics_json(r1), metrics_json(r8));
  for (std::size_t i = 0; i < r1.runs.size(); ++i) {
    EXPECT_EQ(r1.runs[i].run_index, i);
    EXPECT_EQ(r1.runs[i].run_index, r8.runs[i].run_index);
    EXPECT_DOUBLE_EQ(r1.runs[i].metrics.get("sum"), r8.runs[i].metrics.get("sum"));
    EXPECT_EQ(r1.runs[i].notes, r8.runs[i].notes);
  }
  EXPECT_EQ(r1.total_events(), 45u);
  EXPECT_EQ(r8.total_events(), 45u);
}

TEST(RunSweep, MoreJobsThanRunsIsFine) {
  ScenarioSpec spec = noisy_spec();
  spec.replicas = 1;
  SweepOptions opts;
  opts.jobs = 32;
  auto res = run_sweep(spec, opts);
  EXPECT_EQ(res.runs.size(), 3u);
  EXPECT_EQ(res.replicas, 1u);
}

TEST(RunSweep, ZeroReplicasYieldsNoRuns) {
  ScenarioSpec spec = noisy_spec();
  spec.replicas = 0;
  auto res = run_sweep(spec);
  EXPECT_TRUE(res.runs.empty());
  EXPECT_EQ(res.total_events(), 0u);
  EXPECT_TRUE(res.aggregate().items().empty());
}

TEST(RunSweep, SingleReplicaKeysPassThrough) {
  ScenarioSpec spec;
  spec.name = "single";
  spec.body = [](RunContext& ctx) { ctx.put("v", 2.5); };
  auto res = run_sweep(spec);
  ASSERT_EQ(res.runs.size(), 1u);
  const auto agg = res.aggregate(0);
  EXPECT_DOUBLE_EQ(agg.get("v"), 2.5);
  EXPECT_FALSE(agg.contains("v.mean"));
}

TEST(RunSweep, ReplicasExceedingJobsAggregateAllStats) {
  ScenarioSpec spec;
  spec.name = "agg";
  spec.replicas = 7;
  spec.body = [](RunContext& ctx) {
    ctx.put("x", static_cast<double>(ctx.replica()));
  };
  SweepOptions opts;
  opts.jobs = 4;
  auto res = run_sweep(spec, opts);
  ASSERT_EQ(res.runs.size(), 7u);
  const auto agg = res.aggregate(0);
  EXPECT_DOUBLE_EQ(agg.get("x.mean"), 3.0);
  EXPECT_DOUBLE_EQ(agg.get("x.min"), 0.0);
  EXPECT_DOUBLE_EQ(agg.get("x.max"), 6.0);
  EXPECT_DOUBLE_EQ(agg.get("x.p50"), 3.0);
  EXPECT_GT(agg.get("x.stddev"), 0.0);
}

TEST(RunSweep, ReplicasOptionOverridesSpec) {
  ScenarioSpec spec = noisy_spec();
  SweepOptions opts;
  opts.replicas = 2;
  opts.jobs = 2;
  auto res = run_sweep(spec, opts);
  EXPECT_EQ(res.replicas, 2u);
  EXPECT_EQ(res.runs.size(), 6u);
}

TEST(RunSweep, BaseSeedChangesOutput) {
  const ScenarioSpec spec = noisy_spec();
  SweepOptions a;
  a.base_seed = 1;
  SweepOptions b;
  b.base_seed = 2;
  EXPECT_NE(run_sweep(spec, a).mean(0, "sum"), run_sweep(spec, b).mean(0, "sum"));
}

TEST(RunSweep, BodyExceptionsPropagate) {
  ScenarioSpec spec;
  spec.name = "boom";
  spec.replicas = 4;
  spec.body = [](RunContext& ctx) {
    if (ctx.replica() == 2) throw std::runtime_error("body failed");
    ctx.put("ok", 1);
  };
  SweepOptions opts;
  opts.jobs = 4;
  EXPECT_THROW(run_sweep(spec, opts), std::runtime_error);
  opts.jobs = 1;
  EXPECT_THROW(run_sweep(spec, opts), std::runtime_error);
}

TEST(RunSweep, MissingBodyThrows) {
  ScenarioSpec spec;
  spec.name = "nobody";
  EXPECT_THROW(run_sweep(spec), std::invalid_argument);
}

TEST(RunSweep, MeanFallsBackForAbsentKeys) {
  ScenarioSpec spec;
  spec.name = "fallback";
  spec.body = [](RunContext& ctx) { ctx.put("present", 1.0); };
  auto res = run_sweep(spec);
  EXPECT_DOUBLE_EQ(res.mean(0, "present"), 1.0);
  EXPECT_DOUBLE_EQ(res.mean(0, "absent", -3.0), -3.0);
}

TEST(ResolveJobs, HonorsEnvAndFloor) {
  ::unsetenv("TUSSLE_JOBS");
  EXPECT_EQ(resolve_jobs(5), 5u);
  EXPECT_GE(resolve_jobs(0), 1u);
  ::setenv("TUSSLE_JOBS", "3", 1);
  EXPECT_EQ(resolve_jobs(0), 3u);
  EXPECT_EQ(resolve_jobs(2), 2u);  // explicit request beats the env
  ::unsetenv("TUSSLE_JOBS");
}

TEST(ScenarioRegistry, AddFindAndDuplicates) {
  ScenarioRegistry reg;
  ScenarioSpec a;
  a.name = "alpha";
  a.body = [](RunContext&) {};
  reg.add(a);
  ScenarioSpec b;
  b.name = "beta";
  b.body = [](RunContext&) {};
  reg.add(b);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_NE(reg.find("alpha"), nullptr);
  EXPECT_EQ(reg.find("gamma"), nullptr);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_THROW(reg.add(a), std::invalid_argument);
  ScenarioSpec unnamed;
  unnamed.body = [](RunContext&) {};
  EXPECT_THROW(reg.add(unnamed), std::invalid_argument);
}

}  // namespace
}  // namespace tussle::core
