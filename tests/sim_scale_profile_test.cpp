#include "sim/scale_profile.hpp"

#include <gtest/gtest.h>

#include "core/sweep.hpp"
#include "net/network.hpp"

namespace tussle {
namespace {

net::Address addr(net::AsId as, std::uint32_t sub, std::uint32_t host) {
  return net::Address{.provider = as, .subscriber = sub, .host = host};
}

/// Three nodes in three ASes on a chain with distinct link latencies — the
/// smallest topology whose lookahead distribution has more than one entry:
///   A(AS1) --1ms-- B(AS2) --2ms-- C(AS3)
struct ThreeAsChain {
  sim::Simulator sim;
  sim::ShardAuditor audit;
  sim::ScaleProfiler scale;
  net::Network net{sim};
  net::NodeId a, b, c;
  net::Address addr_a = addr(1, 1, 1);
  net::Address addr_c = addr(3, 1, 1);
  int delivered = 0;

  explicit ThreeAsChain(bool profiled = true) {
    audit.set_fail_fast(false);  // attribution only, never policing
    sim.set_auditor(&audit);
    if (profiled) sim.set_scale_profiler(&scale);
    a = net.add_node(1);
    b = net.add_node(2);
    c = net.add_node(3);
    net.connect(a, b, 10e6, sim::Duration::millis(1));
    net.connect(b, c, 10e6, sim::Duration::millis(2));
    net.node(a).add_address(addr_a);
    net.node(c).add_address(addr_c);
    // a -> b on its only interface; b -> c on the b--c interface (index 1).
    net.node(a).forwarding().set_default_route(0);
    net.node(b).forwarding().set_default_route(1);
    net.node(c).forwarding().set_default_route(0);
    net.node(c).set_local_handler([this](const net::Packet&) { ++delivered; });
  }

  net::Packet make() {
    net::Packet p;
    p.src = addr_a;
    p.dst = addr_c;
    p.proto = net::AppProto::kWeb;
    p.size_bytes = 1000;
    return p;
  }

  void send_one() {
    sim.schedule(sim::Duration::millis(1), sim::TaskTag{"test", "inject"},
                 [this] { net.node(a).originate(make()); });
    sim.run();
  }
};

TEST(ScaleProfile, GoldenThreeAsChain) {
  ThreeAsChain t;
  t.send_one();
  ASSERT_EQ(t.delivered, 1);

  // Work and causality: the inject event plus at least one hop event per
  // link, chained — so the critical path spans at least three events and
  // the DAG is deeper than it is wide.
  EXPECT_GE(t.scale.work(), 3u);
  EXPECT_GE(t.scale.events_scheduled(), t.scale.work());
  EXPECT_EQ(t.scale.events_cancelled(), 0u);
  EXPECT_GE(t.scale.critical_path_length(), 3u);
  EXPECT_EQ(t.scale.span_total(), t.scale.critical_path_length());  // one run
  EXPECT_EQ(t.scale.runs(), 1u);

  // All three shards dispatched something, and the packet crossed both
  // shard boundaries.
  const auto& shards = t.scale.shard_events();
  EXPECT_TRUE(shards.count(1) == 1 && shards.at(1) > 0);
  EXPECT_TRUE(shards.count(2) == 1 && shards.at(2) > 0);
  EXPECT_TRUE(shards.count(3) == 1 && shards.at(3) > 0);
  EXPECT_GE(t.scale.cross_shard_events(), 2u);

  // Static lookahead registry: exactly the two cross-AS links, min latency
  // each, and the barrier window is the global minimum (1 ms).
  const auto& links = t.scale.lookahead_links();
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links.at({1u, 2u}), 1'000'000);
  EXPECT_EQ(links.at({2u, 3u}), 2'000'000);
  EXPECT_EQ(t.scale.window_ns(), 1'000'000);

  // The traffic matrix records the boundary crossings with a scheduling
  // delay at least the link's propagation latency.
  const auto& tm = t.scale.traffic();
  ASSERT_EQ(tm.count({1u, 2u}), 1u);
  ASSERT_EQ(tm.count({2u, 3u}), 1u);
  EXPECT_GE(tm.at({1u, 2u}).min_delay_ns, 1'000'000);
  EXPECT_GE(tm.at({2u, 3u}).min_delay_ns, 2'000'000);

  // Memory observability: the world registered its actors, and both event
  // control blocks and the injected packet were counted.
  const auto& actors = t.scale.actors();
  ASSERT_EQ(actors.count("net.node"), 1u);
  EXPECT_EQ(actors.at("net.node").count, 3u);
  ASSERT_EQ(actors.count("net.link"), 1u);
  EXPECT_EQ(actors.at("net.link").count, 2u);
  const auto& allocs = t.scale.allocs();
  ASSERT_EQ(allocs.count("net.packet"), 1u);
  EXPECT_GE(allocs.at("net.packet").count, 1u);
  bool saw_event_alloc = false;
  for (const auto& [kind, tally] : allocs) {
    if (kind.rfind("sim.event/", 0) == 0 && tally.count > 0) saw_event_alloc = true;
  }
  EXPECT_TRUE(saw_event_alloc);

  // Queue stats sampled once per dispatch.
  const auto q = t.scale.queue_stats();
  EXPECT_EQ(q.samples, t.scale.work());

  // The JSON report carries every top-level section.
  const std::string json = t.scale.report_json();
  for (const char* key :
       {"\"work\"", "\"critical_path\"", "\"depth_profile\"", "\"shards\"",
        "\"imbalance\"", "\"shard_load\"", "\"traffic_matrix\"", "\"cross_shard_events\"",
        "\"lookahead\"", "\"queue\"", "\"allocs\"", "\"actors\"", "\"speedup\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("\"model\":\"barrier-window-lpt\""), std::string::npos);
}

TEST(ScaleProfile, SpeedupCurveHitsExactBounds) {
  // Eight independent events, one per shard, all in one barrier window:
  // work = 8, span = 1, so k = 1 must predict exactly 1.0, k = 2 exactly
  // 2.0 (LPT packs 4 + 4), and k >= 8 (and the infinity entry) exactly the
  // work/span bound of 8.
  sim::ScaleProfiler sp;
  const sim::TaskTag tag{"test", "unit"};
  for (std::uint64_t i = 1; i <= 8; ++i) {
    sp.on_schedule(i, sim::SimTime::zero(), sim::SimTime::zero(), tag, sim::kNoShard);
  }
  for (std::uint64_t i = 1; i <= 8; ++i) {
    sp.begin_event(i, sim::SimTime::zero(), 8 - i, tag);
    sp.end_event(static_cast<sim::ShardId>(i));
  }
  EXPECT_EQ(sp.work(), 8u);
  EXPECT_EQ(sp.critical_path_length(), 1u);
  EXPECT_DOUBLE_EQ(sp.work_span_ratio(), 8.0);
  EXPECT_DOUBLE_EQ(sp.speedup_at(1), 1.0);
  EXPECT_DOUBLE_EQ(sp.speedup_at(2), 2.0);
  EXPECT_DOUBLE_EQ(sp.speedup_at(8), 8.0);
  EXPECT_DOUBLE_EQ(sp.speedup_at(0), 8.0);  // k = 0 stands for infinity

  const auto curve = sp.speedup_curve();
  ASSERT_FALSE(curve.empty());
  EXPECT_EQ(curve.front().first, 1u);
  EXPECT_DOUBLE_EQ(curve.front().second, 1.0);
  EXPECT_EQ(curve.back().first, 0u);
  EXPECT_DOUBLE_EQ(curve.back().second, 8.0);
  for (const auto& [k, s] : curve) {
    (void)k;
    EXPECT_LE(s, 8.0 + 1e-9);
    EXPECT_GE(s, 1.0 - 1e-9);
  }
  EXPECT_DOUBLE_EQ(sp.imbalance_ratio(), 1.0);  // perfectly balanced
}

TEST(ScaleProfile, SerialChainCapsSpeedupAtOne) {
  // A pure causal chain on one shard: work = span = 4, so every k predicts
  // exactly 1.0 — no amount of hardware parallelizes a chain.
  sim::ScaleProfiler sp;
  const sim::TaskTag tag{"test", "chain"};
  sp.on_schedule(1, sim::SimTime::zero(), sim::SimTime::zero(), tag, sim::kNoShard);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    const auto now = sim::SimTime::nanos(static_cast<std::int64_t>(i));
    sp.begin_event(i, now, 1, tag);
    if (i < 4) sp.on_schedule(i + 1, now, now, tag, 1u);  // child of the running event
    sp.end_event(1u);
  }
  EXPECT_EQ(sp.work(), 4u);
  EXPECT_EQ(sp.critical_path_length(), 4u);
  EXPECT_DOUBLE_EQ(sp.work_span_ratio(), 1.0);
  for (const auto& [k, s] : sp.speedup_curve()) {
    (void)k;
    EXPECT_DOUBLE_EQ(s, 1.0);
  }
}

TEST(ScaleProfile, QueueDepthHistogramBucketsPowersOfTwo) {
  sim::ScaleProfiler sp;
  const sim::TaskTag tag{"test", "queue"};
  const std::size_t depths[] = {0, 1, 2, 4, 8};
  std::uint64_t id = 0;
  for (const std::size_t d : depths) {
    ++id;
    sp.on_schedule(id, sim::SimTime::zero(), sim::SimTime::zero(), tag, sim::kNoShard);
    sp.begin_event(id, sim::SimTime::zero(), d, tag);
    sp.end_event(sim::kNoShard);
  }
  const auto q = sp.queue_stats();
  EXPECT_EQ(q.samples, 5u);
  EXPECT_EQ(q.max_depth, 8u);
  EXPECT_DOUBLE_EQ(q.mean_depth, 3.0);
  // bucket = bit_width(depth): 0->0, 1->1, 2->2, 4->3, 8->4.
  ASSERT_EQ(q.histogram.size(), 5u);
  for (const std::uint32_t b : {0u, 1u, 2u, 3u, 4u}) {
    ASSERT_EQ(q.histogram.count(b), 1u) << "bucket " << b;
    EXPECT_EQ(q.histogram.at(b), 1u) << "bucket " << b;
  }
}

TEST(ScaleProfile, CancelledEventsNeverReachTheCriticalPath) {
  sim::Simulator sim;
  sim::ScaleProfiler sp;
  sim.set_scale_profiler(&sp);
  int fired = 0;
  sim.schedule(sim::Duration::millis(1), sim::TaskTag{"test", "keep"}, [&] { ++fired; });
  const sim::EventId doomed =
      sim.schedule(sim::Duration::millis(2), sim::TaskTag{"test", "doomed"}, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(doomed));
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sp.events_scheduled(), 2u);
  EXPECT_EQ(sp.events_cancelled(), 1u);
  EXPECT_EQ(sp.work(), 1u);
  EXPECT_EQ(sp.critical_path_length(), 1u);
}

TEST(ScaleProfile, DetachedProfilerChangesNothing) {
  // The same scenario with and without the profiler delivers the same
  // packet count — attaching the pass is observationally inert.
  ThreeAsChain with(/*profiled=*/true);
  ThreeAsChain without(/*profiled=*/false);
  with.send_one();
  without.send_one();
  EXPECT_EQ(with.delivered, without.delivered);
  EXPECT_EQ(without.sim.scale_profiler(), nullptr);
  EXPECT_EQ(without.scale.work(), 0u);
  EXPECT_EQ(without.scale.runs(), 0u);
  EXPECT_TRUE(without.scale.speedup_curve().empty());
}

TEST(ScaleProfile, MergePoolsRunsAssociatively) {
  // Three single-run profiles with different spans and loads: merging
  // ((A+B)+C) and (A+(B+C)) must produce byte-identical reports, and the
  // pooled quantities are sums/maxima over the finalized runs.
  auto record = [](std::uint64_t events, sim::ShardId shard, std::int64_t t0_ns) {
    sim::ScaleProfiler sp;
    const sim::TaskTag tag{"test", "merge"};
    sp.on_schedule(1, sim::SimTime::nanos(t0_ns), sim::SimTime::nanos(t0_ns), tag,
                   sim::kNoShard);
    for (std::uint64_t i = 1; i <= events; ++i) {
      const auto now = sim::SimTime::nanos(t0_ns + static_cast<std::int64_t>(i));
      sp.begin_event(i, now, events - i, tag);
      if (i < events) sp.on_schedule(i + 1, now, now, tag, shard);  // causal child
      sp.end_event(shard);
    }
    return sp;
  };
  const sim::ScaleProfiler a = record(2, 1u, 0);
  const sim::ScaleProfiler b = record(3, 2u, 1000);
  const sim::ScaleProfiler c = record(5, 3u, 2000);

  sim::ScaleProfiler left = a;   // (A+B)+C
  left.merge(b);
  left.merge(c);
  sim::ScaleProfiler bc = b;     // A+(B+C)
  bc.merge(c);
  sim::ScaleProfiler right = a;
  right.merge(bc);

  EXPECT_EQ(left.report_json(), right.report_json());
  EXPECT_EQ(left.runs(), 3u);
  EXPECT_EQ(left.work(), 10u);
  EXPECT_EQ(left.critical_path_length(), 5u);   // max over runs
  EXPECT_EQ(left.span_total(), 10u);            // sum over runs
  // Chains cannot speed up, and pooling respects that: Σwork / Σcost = 1.
  EXPECT_DOUBLE_EQ(left.speedup_at(8), 1.0);
}

TEST(ScaleProfile, SweepReportsAreByteIdenticalAcrossJobs) {
  // The harness contract end to end: a replicated sweep profiled at
  // --jobs 1 and --jobs 8 merges to byte-identical scale reports, because
  // per-run profilers fold in run-index order whatever the schedule was.
  auto sweep_report = [](std::size_t jobs) {
    core::ScenarioSpec spec;
    spec.name = "scale-determinism";
    spec.replicas = 6;
    spec.body = [](core::RunContext& ctx) {
      ThreeAsChain t(/*profiled=*/false);
      ctx.instrument(t.sim);
      // Vary per-run content so a mis-ordered merge cannot accidentally agree.
      const auto packets = 1 + ctx.run_index() % 3;
      for (std::size_t p = 0; p < packets; ++p) {
        t.sim.schedule(sim::Duration::millis(1 + p), sim::TaskTag{"test", "inject"},
                       [&t] { t.net.node(t.a).originate(t.make()); });
      }
      ctx.add_events(t.sim.run());
      ctx.put("delivered", static_cast<double>(t.delivered));
    };
    core::SweepOptions opts;
    opts.base_seed = 7;
    opts.jobs = jobs;
    opts.scale = true;
    const core::SweepResult res = core::run_sweep(spec, opts);
    sim::ScaleProfiler merged;
    for (const auto& r : res.runs) {
      EXPECT_NE(r.scale, nullptr);
      EXPECT_NE(r.audit, nullptr);  // fail-soft auditor auto-attached
      if (r.scale) merged.merge(*r.scale);
    }
    EXPECT_EQ(merged.runs(), 6u);
    return merged.report_json();
  };
  const std::string serial = sweep_report(1);
  const std::string parallel = sweep_report(8);
  EXPECT_EQ(serial, parallel);
}

TEST(ScaleProfile, DashboardIsSelfContainedAndStable) {
  ThreeAsChain t;
  t.send_one();
  const std::string html = sim::scale_dashboard(t.scale, "unit & test");
  EXPECT_EQ(html, sim::scale_dashboard(t.scale, "unit & test"));  // pure function
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("unit &amp; test"), std::string::npos);  // title escaped
  for (const char* section : {"Shard load heatmap", "Cross-shard traffic matrix",
                              "Predicted PDES speedup", "Event-queue depth"}) {
    EXPECT_NE(html.find(section), std::string::npos) << "missing " << section;
  }
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_EQ(html.find("<script"), std::string::npos);  // zero JS
}

}  // namespace
}  // namespace tussle
