#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "routing/link_state.hpp"

namespace tussle::net {
namespace {

struct Fixture {
  sim::Simulator sim{53};
  Network net{sim};
  std::vector<NodeId> ids;
  std::vector<Address> addrs;

  Fixture() {
    ids = build_star(net, 3, 1, LinkSpec{});
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Address a{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
      net.node(ids[i]).add_address(a);
      addrs.push_back(a);
    }
    routing::LinkState ls(net);
    ls.install_routes(ids);
  }

  /// Covert tap on the hub for traffic from addrs[1], copying to addrs[3].
  void install_tap() {
    const Address target = addrs[1];
    const Address collector = addrs[3];
    net.node(ids[0]).add_filter(PacketFilter{
        .name = "lawful-intercept",
        .disclosed = false,  // of course
        .fn = [target, collector](const Packet& p) {
          if (p.src == target) return FilterDecision::mirror(collector, "warrant-1234");
          return FilterDecision::accept();
        }});
  }

  void send(const Address& from, NodeId from_node, const Address& to,
            AppProto proto = AppProto::kWeb, bool encrypted = false) {
    Packet p;
    p.src = from;
    p.dst = to;
    p.proto = proto;
    p.encrypted = encrypted;
    p.payload_tag = "the-goods";
    net.node(from_node).originate(std::move(p));
  }
};

TEST(Wiretap, CopyReachesCollectorAndOriginalStillDelivered) {
  Fixture f;
  f.install_tap();
  int at_dst = 0, at_tap = 0;
  f.net.node(f.ids[2]).set_local_handler([&](const Packet&) { ++at_dst; });
  f.net.node(f.ids[3]).set_local_handler([&](const Packet&) { ++at_tap; });
  f.send(f.addrs[1], f.ids[1], f.addrs[2]);
  f.sim.run();
  EXPECT_EQ(at_dst, 1);
  EXPECT_EQ(at_tap, 1);
  EXPECT_EQ(f.net.counters().mirrored.value(), 1);
  // The tap is invisible: the node discloses nothing.
  EXPECT_TRUE(f.net.node(f.ids[0]).disclosed_filter_names().empty());
}

TEST(Wiretap, NonTargetTrafficNotMirrored) {
  Fixture f;
  f.install_tap();
  f.send(f.addrs[2], f.ids[2], f.addrs[1]);
  f.sim.run();
  EXPECT_EQ(f.net.counters().mirrored.value(), 0);
}

TEST(Wiretap, MirrorHappensEvenWhenPacketThenDropped) {
  // The tap sits before a censor in the chain: the collector sees what the
  // censor saw, including packets that never arrived.
  Fixture f;
  f.install_tap();
  f.net.node(f.ids[0]).add_filter(PacketFilter{
      .name = "censor",
      .disclosed = false,
      .fn = [](const Packet&) { return FilterDecision::drop("all"); }});
  int at_tap = 0;
  f.net.node(f.ids[3]).set_local_handler([&](const Packet&) { ++at_tap; });
  f.send(f.addrs[1], f.ids[1], f.addrs[2]);
  f.sim.run();
  EXPECT_EQ(at_tap, 1);
  EXPECT_EQ(f.net.counters().delivered.value(), 1);  // only the tap copy
  EXPECT_EQ(f.net.counters().dropped_filter.value(), 1);
}

TEST(Wiretap, EncryptionDefeatsContentNotMetadata) {
  // §VI-A: "end-to-end encryption addresses ... the threat that someone
  // wants to steal or modify the information" — the tap still sees that
  // and to whom alice talks, but not what.
  Fixture f;
  f.install_tap();
  std::optional<Packet> captured;
  f.net.node(f.ids[3]).set_local_handler([&](const Packet& p) { captured = p; });
  f.send(f.addrs[1], f.ids[1], f.addrs[2], AppProto::kMail, /*encrypted=*/true);
  f.sim.run();
  ASSERT_TRUE(captured.has_value());
  EXPECT_EQ(captured->src, f.addrs[1]);  // metadata: who
  EXPECT_EQ(captured->observable_proto(), AppProto::kUnknown);  // content class: hidden
  EXPECT_TRUE(captured->visibly_opaque());
}

TEST(Wiretap, MultipleTapsAllReceive) {
  Fixture f;
  const Address t1 = f.addrs[2], t2 = f.addrs[3];
  for (const Address& tap : {t1, t2}) {
    f.net.node(f.ids[0]).add_filter(PacketFilter{
        .name = "tap",
        .disclosed = false,
        .fn = [tap](const Packet& p) {
          if (p.payload_tag == "the-goods" && p.proto == AppProto::kWeb &&
              !p.src.portable && p.src.subscriber == 1) {
            return FilterDecision::mirror(tap, "tap");
          }
          return FilterDecision::accept();
        }});
  }
  f.send(f.addrs[1], f.ids[1], f.addrs[2]);
  f.sim.run();
  EXPECT_EQ(f.net.counters().mirrored.value(), 2);
}

}  // namespace
}  // namespace tussle::net
