#include "net/flow_stats.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "routing/link_state.hpp"

namespace tussle::net {
namespace {

struct Fixture {
  sim::Simulator sim{71};
  Network net{sim};
  std::vector<NodeId> ids;
  std::vector<Address> addrs;

  Fixture() {
    ids = build_star(net, 2, 1, LinkSpec{});
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Address a{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
      net.node(ids[i]).add_address(a);
      addrs.push_back(a);
    }
    routing::LinkState ls(net);
    ls.install_routes(ids);
  }

  void send(FlowId flow, ServiceClass tos, std::uint32_t size) {
    Packet p;
    p.src = addrs[1];
    p.dst = addrs[2];
    p.flow = flow;
    p.tos = tos;
    p.size_bytes = size;
    net.node(ids[1]).originate(std::move(p));
  }
};

TEST(FlowTracker, SeparatesFlows) {
  Fixture f;
  FlowTracker tracker(f.net);
  f.send(1, ServiceClass::kBestEffort, 500);
  f.send(1, ServiceClass::kBestEffort, 500);
  f.send(2, ServiceClass::kPremium, 200);
  f.sim.run();
  EXPECT_EQ(tracker.delivered(1), 2u);
  EXPECT_EQ(tracker.delivered_bytes(1), 1000u);
  EXPECT_EQ(tracker.delivered(2), 1u);
  EXPECT_EQ(tracker.delivered(99), 0u);
  EXPECT_EQ(tracker.flows_seen(), 2u);
}

TEST(FlowTracker, LatencyPerFlowAndClass) {
  Fixture f;
  FlowTracker tracker(f.net);
  f.send(7, ServiceClass::kPremium, 1000);
  f.sim.run();
  EXPECT_EQ(tracker.latency_s(7).count(), 1u);
  EXPECT_GT(tracker.latency_s(7).mean(), 0.0);
  EXPECT_EQ(tracker.class_latency_s(ServiceClass::kPremium).count(), 1u);
  EXPECT_EQ(tracker.class_latency_s(ServiceClass::kBestEffort).count(), 0u);
  EXPECT_EQ(tracker.latency_s(12345).count(), 0u);
}

TEST(FlowTracker, CoexistsWithOtherObservers) {
  Fixture f;
  int scenario_counter = 0;
  f.net.add_delivery_observer([&](const Packet&, NodeId) { ++scenario_counter; });
  FlowTracker tracker(f.net);
  f.send(3, ServiceClass::kAssured, 100);
  f.sim.run();
  EXPECT_EQ(scenario_counter, 1);
  EXPECT_EQ(tracker.delivered(3), 1u);
}

TEST(FlowTracker, SetObserverClearsPrevious) {
  Fixture f;
  int first = 0, second = 0;
  f.net.add_delivery_observer([&](const Packet&, NodeId) { ++first; });
  f.net.set_delivery_observer([&](const Packet&, NodeId) { ++second; });
  f.send(1, ServiceClass::kBestEffort, 100);
  f.sim.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

}  // namespace
}  // namespace tussle::net
