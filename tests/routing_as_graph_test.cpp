#include "routing/as_graph.hpp"

#include <gtest/gtest.h>

namespace tussle::routing {
namespace {

// Small canonical topology:
//        1 --- 2          (tier-1 peers)
//       / \     \.
//      3   4     5        (tier-2 customers)
//      |    \   /
//      6     7-8(peer)    (stubs; 7 buys from 4 and 5)
AsGraph canonical() {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_customer_provider(3, 1);
  g.add_customer_provider(4, 1);
  g.add_customer_provider(5, 2);
  g.add_customer_provider(6, 3);
  g.add_customer_provider(7, 4);
  g.add_customer_provider(7, 5);
  g.add_as(8);
  g.add_peering(7, 8);
  return g;
}

TEST(AsGraph, RelationshipsAreSymmetricInverses) {
  AsGraph g = canonical();
  EXPECT_EQ(g.relationship(3, 1), Rel::kProvider);
  EXPECT_EQ(g.relationship(1, 3), Rel::kCustomer);
  EXPECT_EQ(g.relationship(1, 2), Rel::kPeer);
  EXPECT_EQ(g.relationship(2, 1), Rel::kPeer);
  EXPECT_FALSE(g.relationship(3, 5).has_value());
}

TEST(AsGraph, ReverseHelper) {
  EXPECT_EQ(reverse(Rel::kCustomer), Rel::kProvider);
  EXPECT_EQ(reverse(Rel::kProvider), Rel::kCustomer);
  EXPECT_EQ(reverse(Rel::kPeer), Rel::kPeer);
}

TEST(AsGraph, CountsNodesAndEdges) {
  AsGraph g = canonical();
  EXPECT_EQ(g.as_count(), 8u);
  EXPECT_EQ(g.edge_count(), 8u);
}

TEST(AsGraph, RejectsSelfAndDuplicateEdges) {
  AsGraph g;
  g.add_customer_provider(1, 2);
  EXPECT_THROW(g.add_customer_provider(1, 2), std::invalid_argument);
  EXPECT_THROW(g.add_peering(2, 1), std::invalid_argument);
  EXPECT_THROW(g.add_peering(3, 3), std::invalid_argument);
  EXPECT_THROW(g.add_customer_provider(4, 4), std::invalid_argument);
}

TEST(AsGraph, ValleyFreeAcceptsUpPeerDown) {
  AsGraph g = canonical();
  EXPECT_TRUE(g.valley_free({6, 3, 1, 2, 5, 7}));  // up, up, peer, down, down
  EXPECT_TRUE(g.valley_free({6, 3, 1, 4, 7}));     // up, up, down, down
  EXPECT_TRUE(g.valley_free({7, 4}));              // single climb
  EXPECT_TRUE(g.valley_free({7}));                 // trivial
  EXPECT_TRUE(g.valley_free({}));
}

TEST(AsGraph, ValleyFreeRejectsValleysAndDoublePeering) {
  AsGraph g = canonical();
  // 4 -> 7 -> 5 descends into stub 7 and climbs again: classic valley.
  EXPECT_FALSE(g.valley_free({4, 7, 5}));
  // Peer edge then climb: 8 -(peer)- 7 -> 5 is peer then up.
  EXPECT_FALSE(g.valley_free({8, 7, 5}));
  // Down then peer: 5 -> 7 -(peer)- 8.
  EXPECT_FALSE(g.valley_free({5, 7, 8}));
  // Non-edges fail outright.
  EXPECT_FALSE(g.valley_free({3, 5}));
}

TEST(AsGraph, NeighborsListsRelations) {
  AsGraph g = canonical();
  const auto& n7 = g.neighbors(7);
  ASSERT_EQ(n7.size(), 3u);
  int providers = 0, peers = 0;
  for (auto [as, rel] : n7) {
    (void)as;
    providers += (rel == Rel::kProvider);
    peers += (rel == Rel::kPeer);
  }
  EXPECT_EQ(providers, 2);
  EXPECT_EQ(peers, 1);
}

TEST(AsGraph, HierarchyGeneratorShapes) {
  sim::Rng rng(1);
  auto h = make_hierarchy(rng, 3, 6, 20);
  EXPECT_EQ(h.tier1.size(), 3u);
  EXPECT_EQ(h.tier2.size(), 6u);
  EXPECT_EQ(h.stubs.size(), 20u);
  EXPECT_EQ(h.graph.as_count(), 29u);
  // Tier-1 mesh present.
  EXPECT_EQ(h.graph.relationship(h.tier1[0], h.tier1[1]), Rel::kPeer);
  // Every stub has at least one provider.
  for (AsId s : h.stubs) {
    bool has_provider = false;
    for (auto [n, rel] : h.graph.neighbors(s)) {
      (void)n;
      has_provider |= (rel == Rel::kProvider);
    }
    EXPECT_TRUE(has_provider) << "stub " << s;
  }
  // Stubs never have customers.
  for (AsId s : h.stubs) {
    for (auto [n, rel] : h.graph.neighbors(s)) {
      (void)n;
      EXPECT_NE(rel, Rel::kCustomer) << "stub " << s;
    }
  }
}

TEST(AsGraph, HierarchyDeterministicPerSeed) {
  sim::Rng a(5), b(5);
  auto ha = make_hierarchy(a, 2, 4, 10);
  auto hb = make_hierarchy(b, 2, 4, 10);
  EXPECT_EQ(ha.graph.edge_count(), hb.graph.edge_count());
}

TEST(AsGraph, HierarchyRequiresTier1) {
  sim::Rng rng(1);
  EXPECT_THROW(make_hierarchy(rng, 0, 2, 2), std::invalid_argument);
}

TEST(AsGraph, RelToString) {
  EXPECT_EQ(to_string(Rel::kCustomer), "customer");
  EXPECT_EQ(to_string(Rel::kPeer), "peer");
  EXPECT_EQ(to_string(Rel::kProvider), "provider");
}

}  // namespace
}  // namespace tussle::routing
