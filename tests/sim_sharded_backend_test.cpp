// ShardedBackend: the conservative barrier-synchronized PDES engine.
//
// The determinism contract under test: per-owner event order (and
// therefore every per-owner observable) is a pure function of the
// simulation, not of the shard count — byte-identical at k = 1, 2, 3, 8.
// Plus the edge cases the window machinery must survive: zero-latency
// lookahead (1 ns lockstep, not deadlock), lookahead undercuts (detected
// at the drain, at any k), control-only rounds, horizon/stop semantics,
// and the restricted cancellation surface.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "sim/sharded_backend.hpp"
#include "sim/simulator.hpp"

namespace tussle::sim {
namespace {

ShardedBackend& install_sharded(Simulator& sim, std::size_t shards) {
  sim.set_backend(std::make_unique<ShardedBackend>(sim, shards));
  return dynamic_cast<ShardedBackend&>(sim.backend());
}

// One owner's execution log: (time ns, label). Each owner's log is only
// written by the worker that owns it, so logs need no locking.
using Log = std::vector<std::pair<std::int64_t, std::string>>;

TEST(ShardedBackend, SingleOwnerMatchesSerialOrder) {
  // With one owner and owner-directed scheduling only, the sharded engine
  // must reproduce the serial backend's (time, sequence) order exactly.
  auto drive = [](Simulator& sim) {
    Log log;
    for (int i = 0; i < 6; ++i) {
      sim.schedule_for(7, Duration::millis(3 - i % 3), TaskTag{"test", "seed"},
                       [&log, i, &sim] {
                         log.emplace_back(sim.now().as_nanos(), "a" + std::to_string(i));
                         // Follow-on from inside a worker event stays on the
                         // owner's queue.
                         sim.schedule(Duration::millis(1), TaskTag{"test", "child"},
                                      [&log, i, &sim] {
                                        log.emplace_back(sim.now().as_nanos(),
                                                         "b" + std::to_string(i));
                                      });
                       });
    }
    sim.run();
    return log;
  };

  Simulator serial(11);
  const Log expect = drive(serial);
  ASSERT_EQ(expect.size(), 12u);
  for (std::size_t k : {1u, 2u, 8u}) {
    Simulator sim(11);
    install_sharded(sim, k);
    EXPECT_EQ(drive(sim), expect) << "k=" << k;
  }
}

// A three-owner ring: every event draws from the owner's RNG stream and
// forwards work to the next owner one lookahead later. Exercises the
// outbox path, per-owner RNG lanes, and equal-latency links.
Log ring_scenario(std::size_t shards) {
  Simulator sim(42);
  ShardedBackend& sb = install_sharded(sim, shards);
  const ShardId owners[] = {3, 5, 9};
  for (ShardId o : owners) sim.register_owner(o);
  // Equal latencies on every edge: the window width is exactly 2 ms.
  for (int i = 0; i < 3; ++i) {
    sim.register_lookahead(owners[i], owners[(i + 1) % 3], Duration::millis(2));
  }
  EXPECT_EQ(sb.lookahead(), Duration::millis(2));

  Log logs[3];
  std::function<void(int, int)> hop = [&](int at_idx, int remaining) {
    logs[at_idx].emplace_back(
        sim.now().as_nanos(),
        "o" + std::to_string(owners[at_idx]) + ":" + std::to_string(sim.rng().next_u64() % 1000));
    if (remaining == 0) return;
    const int next = (at_idx + 1) % 3;
    sim.schedule_for(owners[next], Duration::millis(2), TaskTag{"test", "hop"},
                     [&hop, next, remaining] { hop(next, remaining - 1); });
  };
  for (int i = 0; i < 3; ++i) {
    sim.schedule_for(owners[i], Duration::millis(1 + i), TaskTag{"test", "start"},
                     [&hop, i] { hop(i, 7); });
  }
  EXPECT_EQ(sim.run(), 3u * 8u);

  Log merged;
  for (const Log& l : logs) merged.insert(merged.end(), l.begin(), l.end());
  return merged;
}

TEST(ShardedBackend, MultiOwnerDeterministicAcrossShardCounts) {
  const Log base = ring_scenario(1);
  ASSERT_EQ(base.size(), 24u);
  for (std::size_t k : {2u, 3u, 8u}) {
    EXPECT_EQ(ring_scenario(k), base) << "k=" << k;
  }
}

TEST(ShardedBackend, ZeroLatencyDegradesToLockstep) {
  // A zero-latency link clamps the lookahead to 1 ns: same-time cross-owner
  // hops each take one barrier round instead of deadlocking.
  Simulator sim(1);
  ShardedBackend& sb = install_sharded(sim, 2);
  sim.register_owner(1);
  sim.register_owner(2);
  sim.register_lookahead(1, 2, Duration::nanos(0));
  EXPECT_EQ(sb.lookahead(), Duration::nanos(1));

  int hops = 0;
  std::function<void(ShardId, int)> bounce = [&](ShardId at, int remaining) {
    ++hops;
    if (remaining == 0) return;
    const ShardId other = at == 1 ? 2 : 1;
    sim.schedule_for(other, Duration::nanos(0), TaskTag{"test", "bounce"},
                     [&bounce, other, remaining] { bounce(other, remaining - 1); });
  };
  sim.schedule_for(1, Duration::nanos(0), TaskTag{"test", "kick"},
                   [&bounce] { bounce(1, 5); });
  EXPECT_EQ(sim.run(), 6u);
  EXPECT_EQ(hops, 6);
  // Every same-time hop crossed a barrier: at least one window per hop.
  EXPECT_GE(sb.windows_run(), 5u);
  EXPECT_EQ(sim.now(), SimTime::nanos(0));
}

TEST(ShardedBackend, LookaheadUndercutThrowsAtAnyShardCount) {
  // Sending below the declared lookahead can land behind the destination's
  // clock. The drain detects it — deterministically, even at k = 1 where
  // no actual race exists.
  for (std::size_t k : {1u, 4u}) {
    Simulator sim(1);
    install_sharded(sim, k);
    sim.register_owner(1);
    sim.register_owner(2);
    sim.register_lookahead(1, 2, Duration::millis(1));
    // Destination executes its 600 us event inside the window [0, 1 ms);
    // the undercut arrival at 500 us is then in its past.
    sim.schedule_for(2, Duration::micros(600), TaskTag{"test", "dst"}, [] {});
    sim.schedule_for(1, Duration::nanos(0), TaskTag{"test", "src"}, [&sim] {
      sim.schedule_for(2, Duration::micros(500), TaskTag{"test", "undercut"}, [] {});
    });
    EXPECT_THROW(sim.run(), std::logic_error) << "k=" << k;
  }
}

TEST(ShardedBackend, ControlOnlyRoundRunsOnCoordinator) {
  // Setup-context schedule() lands on the control queue; the control event
  // runs between windows and may inject owner work via schedule_for.
  Simulator sim(1);
  ShardedBackend& sb = install_sharded(sim, 2);
  sim.register_owner(4);
  sim.register_owner(6);
  sim.register_lookahead(4, 6, Duration::millis(1));

  std::vector<std::string> order;
  bool control_ctx_flagged = false;
  sim.schedule(Duration::millis(5), TaskTag{"test", "control"}, [&] {
    const ExecCtx* c = current_exec_ctx();
    control_ctx_flagged = c != nullptr && c->control;
    order.push_back("control@" + std::to_string(sim.now().as_nanos()));
    sim.schedule_for(6, Duration::millis(2), TaskTag{"test", "injected"},
                     [&order, &sim] {
                       order.push_back("owner@" + std::to_string(sim.now().as_nanos()));
                     });
  });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_TRUE(control_ctx_flagged);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "control@5000000");
  EXPECT_EQ(order[1], "owner@7000000");
}

TEST(ShardedBackend, ControlRunsBeforeSameTimeOwnerEvents) {
  Simulator sim(1);
  install_sharded(sim, 2);
  sim.register_owner(1);
  std::vector<std::string> order;
  sim.schedule_for(1, Duration::millis(3), TaskTag{"test", "owner"},
                   [&order] { order.push_back("owner"); });
  sim.schedule(Duration::millis(3), TaskTag{"test", "control"},
               [&order] { order.push_back("control"); });
  EXPECT_EQ(sim.run(), 2u);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "control");
  EXPECT_EQ(order[1], "owner");
}

TEST(ShardedBackend, HorizonAdvancesClockLikeSerial) {
  Simulator sim(1);
  install_sharded(sim, 2);
  sim.register_owner(1);
  sim.schedule_for(1, Duration::millis(2), TaskTag{"test", "only"}, [] {});
  EXPECT_EQ(sim.run(SimTime::millis(10)), 1u);
  EXPECT_EQ(sim.now(), SimTime::millis(10));  // horizon fill, as on serial

  // Events beyond the horizon stay pending.
  sim.schedule_for(1, Duration::millis(100), TaskTag{"test", "late"}, [] {});
  EXPECT_EQ(sim.run(SimTime::millis(20)), 0u);
  EXPECT_EQ(sim.now(), SimTime::millis(20));
  EXPECT_EQ(sim.events_pending(), 1u);
}

TEST(ShardedBackend, StopEndsRunAtWindowBoundary) {
  Simulator sim(1);
  install_sharded(sim, 2);
  sim.register_owner(1);
  sim.register_owner(2);
  sim.register_lookahead(1, 2, Duration::millis(1));
  std::size_t fired = 0;
  for (int i = 1; i <= 20; ++i) {
    const ShardId o = i % 2 ? 1 : 2;
    sim.schedule_for(o, Duration::millis(i), TaskTag{"test", "tick"}, [&] {
      ++fired;
      if (fired == 3) sim.stop();
    });
  }
  const std::size_t ran = sim.run();
  EXPECT_GE(ran, 3u);
  EXPECT_LT(ran, 20u);
  EXPECT_GT(sim.events_pending(), 0u);
}

TEST(ShardedBackend, CancellationIsOwnerLocal) {
  Simulator sim(1);
  install_sharded(sim, 2);
  sim.register_owner(1);
  sim.register_owner(2);
  sim.register_lookahead(1, 2, Duration::millis(1));

  // Setup context may cancel anything still queued.
  bool fired = false;
  const EventId direct =
      sim.schedule_for(1, Duration::millis(1), TaskTag{"test", "x"}, [&fired] { fired = true; });
  EXPECT_TRUE(sim.cancel(direct));
  EXPECT_FALSE(sim.cancel(direct));  // already gone

  bool own_cancel_ok = false;
  bool cross_cancel_refused = false;
  bool remote_id_flagged = false;
  sim.schedule_for(1, Duration::millis(2), TaskTag{"test", "worker"}, [&] {
    // Same-owner: schedule then cancel succeeds.
    const EventId mine =
        sim.schedule(Duration::millis(1), TaskTag{"test", "never"}, [] {});
    own_cancel_ok = sim.cancel(mine);
    // Cross-owner: the id is a synthetic remote handle; not cancellable.
    const EventId theirs = sim.schedule_for(2, Duration::millis(2),
                                            TaskTag{"test", "remote"}, [] {});
    remote_id_flagged = (theirs.value & ShardedBackend::kRemoteId) != 0;
    cross_cancel_refused = !sim.cancel(theirs);
  });
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(own_cancel_ok);
  EXPECT_TRUE(remote_id_flagged);
  EXPECT_TRUE(cross_cancel_refused);
}

TEST(ShardedBackend, StepThrows) {
  Simulator sim(1);
  install_sharded(sim, 2);
  EXPECT_THROW(sim.step(), std::logic_error);
}

TEST(ShardedBackend, SetBackendAfterSchedulingThrows) {
  Simulator sim(1);
  sim.schedule(Duration::millis(1), [] {});
  EXPECT_THROW(sim.set_backend(std::make_unique<ShardedBackend>(sim, 2)),
               std::logic_error);
}

TEST(ShardedBackend, RegisterOwnerMidRunThrows) {
  Simulator sim(1);
  install_sharded(sim, 1);
  sim.register_owner(1);
  sim.schedule_for(1, Duration::millis(1), TaskTag{"test", "x"},
                   [&sim] { sim.register_owner(99); });
  EXPECT_THROW(sim.run(), std::logic_error);
}

// End-to-end through the Network layer: packet delivery counts and latency
// stats must be identical at every shard count (counters accumulate in
// per-owner lanes and merge owner-ascending).
struct NetResult {
  std::int64_t originated = 0;
  std::int64_t delivered = 0;
  std::size_t events = 0;
  std::size_t received = 0;
};

NetResult net_scenario(std::size_t shards) {
  Simulator sim(7);
  if (shards > 0) install_sharded(sim, shards);
  net::Network net(sim);
  const net::NodeId a = net.add_node(1);
  const net::NodeId b = net.add_node(2);
  net.connect(a, b, 1e9, Duration::millis(1));
  const net::Address dst{2, 1, 1, false};
  net.node(b).add_address(dst);
  std::size_t received = 0;
  net.node(b).set_local_handler([&received](const net::Packet&) { ++received; });
  net.node(a).forwarding().set_prefix_route(net::prefix_of(dst),
                                            net.neighbors(a).at(0).second);
  for (int i = 0; i < 8; ++i) {
    sim.schedule_for(1, Duration::micros(100 * (i + 1)), TaskTag{"test", "probe"},
                     [&net, a, dst] {
                       net::Packet p;
                       p.src = net::Address{1, 1, 1, false};
                       p.dst = dst;
                       net.node(a).originate(p);
                     });
  }
  NetResult r;
  r.events = sim.run();
  r.originated = net.counters().originated.value();
  r.delivered = net.counters().delivered.value();
  r.received = received;
  return r;
}

TEST(ShardedBackend, NetworkDeliveryMatchesAcrossShardCounts) {
  const NetResult serial = net_scenario(0);
  EXPECT_EQ(serial.originated, 8);
  EXPECT_EQ(serial.delivered, 8);
  EXPECT_EQ(serial.received, 8u);
  for (std::size_t k : {1u, 2u, 4u}) {
    const NetResult r = net_scenario(k);
    EXPECT_EQ(r.originated, serial.originated) << "k=" << k;
    EXPECT_EQ(r.delivered, serial.delivered) << "k=" << k;
    EXPECT_EQ(r.received, serial.received) << "k=" << k;
  }
}

TEST(ShardedBackend, HeartbeatTicksBetweenWindows) {
  // Heartbeats work under sharding: the coordinator checks between barrier
  // windows (workers parked at barrier A), so beats land on window
  // boundaries, monotonically, with event counts that end at the true
  // total. Progress lines at window granularity beat no progress at all on
  // long sharded runs.
  Simulator sim(5);
  install_sharded(sim, 2);
  sim.register_owner(1);
  sim.register_owner(2);
  sim.register_lookahead(1, 2, Duration::millis(1));

  std::vector<Simulator::Heartbeat> beats;
  sim.set_heartbeat(Duration::millis(2),
                    [&beats](const Simulator::Heartbeat& h) { beats.push_back(h); });

  // 20 ms of alternating-owner work: ~10 beats at a 2 ms period.
  for (int i = 1; i <= 20; ++i) {
    const ShardId o = i % 2 ? 1 : 2;
    sim.schedule_for(o, Duration::millis(i), TaskTag{"test", "tick"}, [] {});
  }
  EXPECT_EQ(sim.run(), 20u);

  ASSERT_GE(beats.size(), 3u);
  for (std::size_t i = 0; i < beats.size(); ++i) {
    // Window-boundary semantics: each beat's sim-time is a whole window
    // edge (a multiple of the 1 ms lookahead), never mid-window.
    EXPECT_EQ(beats[i].sim_now.as_nanos() % 1'000'000, 0) << "beat " << i;
    if (i > 0) {
      EXPECT_GT(beats[i].sim_now.as_nanos(), beats[i - 1].sim_now.as_nanos());
      EXPECT_GE(beats[i].events_executed, beats[i - 1].events_executed);
    }
  }
  // The last beat fires at or one period before the final window, so its
  // running count sits within a beat period of the true total.
  EXPECT_GE(beats.back().events_executed, 18u);
  EXPECT_LE(beats.back().events_executed, 20u);
}

}  // namespace
}  // namespace tussle::sim
