// ParallelOptions: the flag > environment > default ladder shared by every
// experiment binary, and the jobs-x-shards composition rules the harness
// relies on (--shards drops auto --jobs to 1; serial sinks force 1; trace/
// span instrumentation blocks sharding while heartbeats do not).
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "parallel_options.hpp"

namespace tussle::bench {
namespace {

constexpr const char* kVars[] = {"TUSSLE_SEED", "TUSSLE_JOBS",
                                 "TUSSLE_REPLICAS", "TUSSLE_SHARDS"};

/// Clears the TUSSLE_* knobs for one test and restores them after, so the
/// suite does not leak configuration between tests (or into the caller's
/// shell view of reality, when ctest exports any of them).
class EnvGuard {
 public:
  EnvGuard() {
    for (const char* v : kVars) {
      const char* cur = std::getenv(v);
      saved_.emplace_back(v, cur != nullptr ? std::optional<std::string>(cur)
                                            : std::nullopt);
      ::unsetenv(v);
    }
  }
  ~EnvGuard() {
    for (const auto& [name, value] : saved_) {
      if (value) {
        ::setenv(name, value->c_str(), 1);
      } else {
        ::unsetenv(name);
      }
    }
  }

 private:
  std::vector<std::pair<const char*, std::optional<std::string>>> saved_;
};

TEST(ParallelOptions, DefaultsWhenNothingConfigured) {
  EnvGuard guard;
  const ParallelOptions o =
      ParallelOptions::resolve(std::nullopt, std::nullopt, std::nullopt, std::nullopt);
  EXPECT_EQ(o.seed, 1u);
  EXPECT_EQ(o.jobs, 0u);      // auto
  EXPECT_EQ(o.replicas, 0u);  // keep each spec's count
  EXPECT_EQ(o.shards, 0u);    // serial backend
}

TEST(ParallelOptions, EnvironmentBeatsDefault) {
  EnvGuard guard;
  ::setenv("TUSSLE_SEED", "77", 1);
  ::setenv("TUSSLE_JOBS", "3", 1);
  ::setenv("TUSSLE_REPLICAS", "5", 1);
  ::setenv("TUSSLE_SHARDS", "8", 1);
  const ParallelOptions o =
      ParallelOptions::resolve(std::nullopt, std::nullopt, std::nullopt, std::nullopt);
  EXPECT_EQ(o.seed, 77u);
  EXPECT_EQ(o.jobs, 3u);
  EXPECT_EQ(o.replicas, 5u);
  EXPECT_EQ(o.shards, 8u);
}

TEST(ParallelOptions, FlagBeatsEnvironment) {
  EnvGuard guard;
  ::setenv("TUSSLE_SEED", "77", 1);
  ::setenv("TUSSLE_JOBS", "3", 1);
  ::setenv("TUSSLE_REPLICAS", "5", 1);
  ::setenv("TUSSLE_SHARDS", "8", 1);
  const ParallelOptions o = ParallelOptions::resolve(2u, 4u, 6u, 2u);
  EXPECT_EQ(o.seed, 2u);
  EXPECT_EQ(o.jobs, 4u);
  EXPECT_EQ(o.replicas, 6u);
  EXPECT_EQ(o.shards, 2u);
}

TEST(ParallelOptions, MalformedEnvironmentFallsThrough) {
  EnvGuard guard;
  ::setenv("TUSSLE_SEED", "abc", 1);
  ::setenv("TUSSLE_JOBS", "0", 1);   // zero means "not configured"
  ::setenv("TUSSLE_REPLICAS", "", 1);
  ::setenv("TUSSLE_SHARDS", "4x", 1);
  const ParallelOptions o =
      ParallelOptions::resolve(std::nullopt, std::nullopt, std::nullopt, std::nullopt);
  EXPECT_EQ(o.seed, 1u);
  EXPECT_EQ(o.jobs, 0u);
  EXPECT_EQ(o.replicas, 0u);
  EXPECT_EQ(o.shards, 0u);
}

TEST(ParallelOptions, AutoJobsDropToOneUnderShards) {
  EnvGuard guard;
  // Auto jobs + in-run sharding: each run's k workers already fill the
  // machine, so the sweep pool must not multiply on top.
  ParallelOptions o;
  o.shards = 8;
  EXPECT_EQ(o.sweep_jobs(/*serial_sinks=*/false), 1u);
  // An explicit --jobs always wins over the drop rule.
  o.jobs = 4;
  EXPECT_EQ(o.sweep_jobs(false), 4u);
  // Without shards, auto stays auto (0 = size to the machine later).
  o.shards = 0;
  o.jobs = 0;
  EXPECT_EQ(o.sweep_jobs(false), 0u);
}

TEST(ParallelOptions, SerialSinksForceOneJob) {
  EnvGuard guard;
  ParallelOptions o;
  o.jobs = 16;
  EXPECT_EQ(o.sweep_jobs(/*serial_sinks=*/true), 1u);
}

TEST(ParallelOptions, RunShardsBlockedOnlyBySerialInstrumentation) {
  EnvGuard guard;
  ParallelOptions o;
  o.shards = 8;
  // --trace/span collection assumes the serial backend's single dispatch
  // thread, so it zeroes the shard request...
  EXPECT_EQ(o.run_shards(/*serial_only_instrumentation=*/true), 0u);
  // ...but plain sharding (including with --heartbeat, which only forces
  // --jobs 1 via sweep_jobs) passes through.
  EXPECT_EQ(o.run_shards(false), 8u);
  EXPECT_EQ(o.sweep_jobs(/*serial_sinks=*/true), 1u);  // heartbeat's stderr sink
}

}  // namespace
}  // namespace tussle::bench
