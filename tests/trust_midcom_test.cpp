#include "trust/midcom.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "routing/link_state.hpp"

namespace tussle::trust {
namespace {

using net::Address;
using net::NodeId;

struct Fixture {
  sim::Simulator sim{29};
  net::Network net{sim};
  std::vector<NodeId> ids;
  std::vector<Address> addrs;

  Fixture() {
    ids = net::build_star(net, 2, 1, net::LinkSpec{});
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Address a{.provider = 1, .subscriber = static_cast<std::uint32_t>(i), .host = 1};
      net.node(ids[i]).add_address(a);
      addrs.push_back(a);
    }
    routing::LinkState ls(net);
    ls.install_routes(ids);
  }

  /// Default-deny firewall at the hub, installed AFTER the broker.
  void add_default_deny() {
    net.node(ids[0]).add_filter(net::PacketFilter{
        .name = "fw",
        .disclosed = true,
        .fn = [](const net::Packet&) { return net::FilterDecision::drop("default-deny"); }});
  }

  int send_and_count(net::AppProto proto, const Address& from, const Address& to,
                     NodeId from_node) {
    const auto before = net.counters().delivered.value();
    net::Packet p;
    p.src = from;
    p.dst = to;
    p.proto = proto;
    net.node(from_node).originate(std::move(p));
    sim.run();
    return static_cast<int>(net.counters().delivered.value() - before);
  }
};

TEST(PinholeBroker, EndUserAuthorityGrants) {
  Fixture f;
  PinholeBroker broker(f.net, f.ids[0], PolicyAuthority::kEndUser);
  f.add_default_deny();
  // Without a pinhole, nothing passes the default-deny hub.
  EXPECT_EQ(f.send_and_count(net::AppProto::kVoip, f.addrs[1], f.addrs[2], f.ids[1]), 0);
  auto grant = broker.request(
      {"user2", f.addrs[1], net::AppProto::kVoip, "incoming call from my friend"});
  EXPECT_TRUE(grant.granted);
  EXPECT_EQ(f.send_and_count(net::AppProto::kVoip, f.addrs[1], f.addrs[2], f.ids[1]), 1);
}

TEST(PinholeBroker, PinholeIsSpecificToPeerAndProto) {
  Fixture f;
  PinholeBroker broker(f.net, f.ids[0], PolicyAuthority::kEndUser);
  f.add_default_deny();
  broker.request({"user2", f.addrs[1], net::AppProto::kVoip, ""});
  // Same peer, different protocol: still blocked.
  EXPECT_EQ(f.send_and_count(net::AppProto::kP2p, f.addrs[1], f.addrs[2], f.ids[1]), 0);
  // Different peer, right protocol: still blocked.
  EXPECT_EQ(f.send_and_count(net::AppProto::kVoip, f.addrs[2], f.addrs[1], f.ids[2]), 0);
}

TEST(PinholeBroker, AdminAuthorityUsesAllowlist) {
  Fixture f;
  PinholeBroker broker(f.net, f.ids[0], PolicyAuthority::kNetworkAdmin);
  broker.admin_allow(net::AppProto::kVoip);
  auto voip = broker.request({"user2", f.addrs[1], net::AppProto::kVoip, ""});
  EXPECT_TRUE(voip.granted);
  auto p2p = broker.request({"user2", f.addrs[1], net::AppProto::kP2p, ""});
  EXPECT_FALSE(p2p.granted);
  EXPECT_EQ(p2p.reason, "protocol not negotiable under admin policy");
}

TEST(PinholeBroker, GovernmentAuthorityNeverNegotiates) {
  Fixture f;
  PinholeBroker broker(f.net, f.ids[0], PolicyAuthority::kGovernment);
  auto grant = broker.request({"user2", f.addrs[1], net::AppProto::kWeb, "please"});
  EXPECT_FALSE(grant.granted);
  EXPECT_EQ(broker.active_pinholes(), 0u);
}

TEST(PinholeBroker, RevocationClosesTheHole) {
  Fixture f;
  PinholeBroker broker(f.net, f.ids[0], PolicyAuthority::kEndUser);
  f.add_default_deny();
  auto grant = broker.request({"user2", f.addrs[1], net::AppProto::kVoip, ""});
  EXPECT_EQ(f.send_and_count(net::AppProto::kVoip, f.addrs[1], f.addrs[2], f.ids[1]), 1);
  EXPECT_TRUE(broker.revoke(grant.pinhole_id));
  EXPECT_FALSE(broker.revoke(grant.pinhole_id));
  EXPECT_EQ(f.send_and_count(net::AppProto::kVoip, f.addrs[1], f.addrs[2], f.ids[1]), 0);
}

TEST(PinholeBroker, AuditLogRecordsEverything) {
  Fixture f;
  PinholeBroker broker(f.net, f.ids[0], PolicyAuthority::kNetworkAdmin);
  broker.admin_allow(net::AppProto::kVoip);
  broker.request({"alice", f.addrs[1], net::AppProto::kVoip, "call"});
  broker.request({"bob", f.addrs[2], net::AppProto::kP2p, "sharing"});
  ASSERT_EQ(broker.log().size(), 2u);
  EXPECT_TRUE(broker.log()[0].second.granted);
  EXPECT_FALSE(broker.log()[1].second.granted);
  EXPECT_EQ(broker.log()[1].first.requester, "bob");
}

}  // namespace
}  // namespace tussle::trust
