#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace tussle::sim {
namespace {

TEST(Tracer, DisabledByDefault) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  EXPECT_FALSE(t.enabled_for(TraceLevel::kError));
  t.keep_records(true);
  t.emit(SimTime::zero(), TraceLevel::kError, "x", "should not record");
  EXPECT_TRUE(t.drain().empty());
}

TEST(Tracer, LevelFiltering) {
  Tracer t;
  t.enable(true);
  t.keep_records(true);
  t.set_level(TraceLevel::kWarn);
  t.emit(SimTime::zero(), TraceLevel::kDebug, "c", "debug");
  t.emit(SimTime::zero(), TraceLevel::kInfo, "c", "info");
  t.emit(SimTime::zero(), TraceLevel::kWarn, "c", "warn");
  t.emit(SimTime::zero(), TraceLevel::kError, "c", "error");
  auto recs = t.drain();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].message, "warn");
  EXPECT_EQ(recs[1].message, "error");
}

TEST(Tracer, SinkReceivesRecords) {
  Tracer t;
  t.enable(true);
  std::vector<std::string> seen;
  t.set_sink([&](const Tracer::Record& r) { seen.push_back(r.component + ":" + r.message); });
  t.emit(SimTime::millis(5), TraceLevel::kInfo, "router", "forwarded");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "router:forwarded");
}

TEST(Tracer, DrainClearsRecords) {
  Tracer t;
  t.enable(true);
  t.keep_records(true);
  t.emit(SimTime::zero(), TraceLevel::kInfo, "c", "one");
  EXPECT_EQ(t.drain().size(), 1u);
  EXPECT_TRUE(t.drain().empty());
}

TEST(Tracer, MacroEvaluatesLazily) {
  Tracer t;  // disabled
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "costly";
  };
  TUSSLE_TRACE(t, SimTime::zero(), TraceLevel::kError, "c", expensive());
  EXPECT_EQ(evaluations, 0);
  t.enable(true);
  t.keep_records(true);
  TUSSLE_TRACE(t, SimTime::zero(), TraceLevel::kError, "c", expensive());
  EXPECT_EQ(evaluations, 1);
  auto recs = t.drain();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].message, "costly");
}

TEST(Tracer, GlobalSingletonIsStable) {
  Tracer& a = Tracer::global();
  Tracer& b = Tracer::global();
  EXPECT_EQ(&a, &b);
}

TEST(Tracer, LevelNames) {
  EXPECT_EQ(to_string(TraceLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(TraceLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(TraceLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(TraceLevel::kError), "ERROR");
}

TEST(Tracer, RecordCarriesTimestamp) {
  Tracer t;
  t.enable(true);
  t.keep_records(true);
  t.emit(SimTime::seconds(1.5), TraceLevel::kInfo, "c", "m");
  auto recs = t.drain();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].time, SimTime::seconds(1.5));
}

}  // namespace
}  // namespace tussle::sim
