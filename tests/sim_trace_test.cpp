#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace tussle::sim {
namespace {

TEST(Tracer, DisabledByDefault) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  EXPECT_FALSE(t.enabled_for(TraceLevel::kError));
  t.keep_records(true);
  t.emit(SimTime::zero(), TraceLevel::kError, "x", "should not record");
  EXPECT_TRUE(t.drain().empty());
}

TEST(Tracer, LevelFiltering) {
  Tracer t;
  t.enable(true);
  t.keep_records(true);
  t.set_level(TraceLevel::kWarn);
  t.emit(SimTime::zero(), TraceLevel::kDebug, "c", "debug");
  t.emit(SimTime::zero(), TraceLevel::kInfo, "c", "info");
  t.emit(SimTime::zero(), TraceLevel::kWarn, "c", "warn");
  t.emit(SimTime::zero(), TraceLevel::kError, "c", "error");
  auto recs = t.drain();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].message, "warn");
  EXPECT_EQ(recs[1].message, "error");
}

TEST(Tracer, SinkReceivesRecords) {
  Tracer t;
  t.enable(true);
  std::vector<std::string> seen;
  t.set_sink([&](const Tracer::Record& r) { seen.push_back(r.component + ":" + r.message); });
  t.emit(SimTime::millis(5), TraceLevel::kInfo, "router", "forwarded");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "router:forwarded");
}

TEST(Tracer, DrainClearsRecords) {
  Tracer t;
  t.enable(true);
  t.keep_records(true);
  t.emit(SimTime::zero(), TraceLevel::kInfo, "c", "one");
  EXPECT_EQ(t.drain().size(), 1u);
  EXPECT_TRUE(t.drain().empty());
}

TEST(Tracer, MacroEvaluatesLazily) {
  Tracer t;  // disabled
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "costly";
  };
  TUSSLE_TRACE(t, SimTime::zero(), TraceLevel::kError, "c", expensive());
  EXPECT_EQ(evaluations, 0);
  t.enable(true);
  t.keep_records(true);
  TUSSLE_TRACE(t, SimTime::zero(), TraceLevel::kError, "c", expensive());
  EXPECT_EQ(evaluations, 1);
  auto recs = t.drain();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].message, "costly");
}

TEST(Tracer, GlobalSingletonIsStable) {
  Tracer& a = Tracer::global();
  Tracer& b = Tracer::global();
  EXPECT_EQ(&a, &b);
}

TEST(Tracer, LevelNames) {
  EXPECT_EQ(to_string(TraceLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(TraceLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(TraceLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(TraceLevel::kError), "ERROR");
}

TEST(Tracer, RecordCarriesTimestamp) {
  Tracer t;
  t.enable(true);
  t.keep_records(true);
  t.emit(SimTime::seconds(1.5), TraceLevel::kInfo, "c", "m");
  auto recs = t.drain();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].time, SimTime::seconds(1.5));
}

TEST(Tracer, TypedEventPreservesFieldOrderAndTypes) {
  Tracer t;
  t.enable(true);
  t.keep_records(true);
  TUSSLE_TRACE_EVENT(t, SimTime::millis(3), TraceLevel::kInfo, "net.node", "drop",
                     {"reason", "ttl"}, {"uid", std::uint64_t{7}}, {"latency", 0.25},
                     {"disclosed", true});
  auto recs = t.drain();
  ASSERT_EQ(recs.size(), 1u);
  const auto& r = recs[0];
  EXPECT_EQ(r.message, "drop");
  ASSERT_EQ(r.fields.size(), 4u);
  EXPECT_EQ(r.fields[0].key, "reason");
  EXPECT_EQ(std::get<std::string>(r.fields[0].value), "ttl");
  EXPECT_EQ(r.fields[1].key, "uid");
  EXPECT_EQ(std::get<std::int64_t>(r.fields[1].value), 7);
  EXPECT_EQ(r.fields[2].key, "latency");
  EXPECT_DOUBLE_EQ(std::get<double>(r.fields[2].value), 0.25);
  EXPECT_EQ(r.fields[3].key, "disclosed");
  EXPECT_TRUE(std::get<bool>(r.fields[3].value));
}

TEST(Tracer, EventMacroEvaluatesFieldsLazily) {
  Tracer t;  // disabled
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return 42;
  };
  TUSSLE_TRACE_EVENT(t, SimTime::zero(), TraceLevel::kError, "c", "e",
                     {"v", expensive()});
  EXPECT_EQ(evaluations, 0);
  t.enable(true);
  TUSSLE_TRACE_EVENT(t, SimTime::zero(), TraceLevel::kError, "c", "e",
                     {"v", expensive()});
  EXPECT_EQ(evaluations, 1);
}

TEST(Jsonl, StableKeyOrderAndValueRendering) {
  Tracer::Record rec;
  rec.time = SimTime::millis(2);
  rec.level = TraceLevel::kWarn;
  rec.component = "routing.bgp";
  rec.message = "hijack-accepted";
  rec.fields.push_back({"as", std::int64_t{12}});
  rec.fields.push_back({"fraction", 0.5});
  rec.fields.push_back({"validated", false});
  rec.fields.push_back({"victim", "as-3"});
  EXPECT_EQ(to_jsonl(rec),
            "{\"t_ns\":2000000,\"level\":\"WARN\",\"component\":\"routing.bgp\","
            "\"event\":\"hijack-accepted\",\"as\":12,\"fraction\":0.5,"
            "\"validated\":false,\"victim\":\"as-3\"}");
}

TEST(Jsonl, EscapesSpecialCharactersInKeysAndValues) {
  Tracer::Record rec;
  rec.time = SimTime::zero();
  rec.level = TraceLevel::kInfo;
  rec.component = "c";
  rec.message = "quote\"and\\slash";
  rec.fields.push_back({"new\nline", std::string("tab\there")});
  EXPECT_EQ(to_jsonl(rec),
            "{\"t_ns\":0,\"level\":\"INFO\",\"component\":\"c\","
            "\"event\":\"quote\\\"and\\\\slash\",\"new\\nline\":\"tab\\there\"}");
}

TEST(Jsonl, SinkWritesOneLinePerRecord) {
  Tracer t;
  t.enable(true);
  std::ostringstream os;
  t.set_sink(make_jsonl_sink(os));
  t.emit_event(SimTime::millis(1), TraceLevel::kInfo, "a", "x", {{"k", 1}});
  t.emit_event(SimTime::millis(2), TraceLevel::kInfo, "b", "y", {});
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_NE(out.find("\"component\":\"a\""), std::string::npos);
  EXPECT_NE(out.find("\"event\":\"y\""), std::string::npos);
}

}  // namespace
}  // namespace tussle::sim
