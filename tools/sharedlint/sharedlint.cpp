// sharedlint — shard-safety lint for the tussle-net source tree.
//
// The planned PDES refactor (ROADMAP item 2) partitions the world by AS
// into shards, each with its own event queue. That split is only sound if
// no event handler reaches into state owned by another shard except via a
// scheduled event — the invariant Shadow had to establish before its
// scheduler/worker split. This tool is the static half of the shard-safety
// analysis (sim/shard_audit.hpp is the runtime half): it inventories every
// construct that would be shared mutable state, or a back door between
// actors, once the world is sharded.
//
// Checks:
//   mutable-global     namespace-scope non-const variables anywhere in
//                      src/: process-wide state every shard would race on.
//   static-local       function-scope `static` (or thread_local) without
//                      const/constexpr: a hidden global with lazy init —
//                      the classic singleton cell.
//   singleton-accessor record-scope `static X& f()` declarations: the
//                      Meyers-singleton surface through which shared state
//                      escapes into every shard.
//   cross-actor-ptr    record members that are raw pointers to actor types
//                      (Node, Link, Network, Simulator, Ledger): edges in
//                      the object graph that let one shard's handler reach
//                      another's state synchronously.
//   cross-actor-mut    source lines that fetch another actor by id and
//                      mutate it in the same expression (net.node(x).
//                      add_filter(...)), or install routes into a node's
//                      FIB from outside net/ — mutation of another actor's
//                      state that never crosses the event queue.
//   unordered-merge    range-for iteration over a variable declared as an
//                      unordered container: hash-order iteration feeding
//                      any output makes merged results schedule-dependent.
//
// Every allowlist entry must carry a `-- justification`; the justification
// is emitted into the JSON report, so the committed report enumerates each
// audited exception with its reason.
//
// Usage: sharedlint [--allowlist FILE] [--json FILE] DIR...
// Exit:  0 clean, 1 unallowlisted findings, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;  // path as scanned
  std::size_t line;  // 1-based
  std::string check;
  std::string message;
  std::string source_line;
  std::string justification;  // filled in when allowlisted
};

struct AllowEntry {
  std::string check;
  std::string path_suffix;
  std::string line_substring;  // empty = any line in the file
  std::string justification;   // mandatory: goes into the JSON report
  mutable bool used = false;
};

// ------------------------------------------------------------ utilities --

bool ends_with_path(const std::string& path, const std::string& suffix) {
  if (suffix.size() > path.size()) return false;
  if (!std::equal(suffix.rbegin(), suffix.rend(), path.rbegin())) return false;
  const std::size_t start = path.size() - suffix.size();
  return start == 0 || path[start - 1] == '/';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True if `token` occurs in `text` bounded by non-identifier characters.
bool contains_token(std::string_view text, std::string_view token) {
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end == text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// Replaces comments and string/char literal contents with spaces, keeping
/// newlines so line numbers survive. Handles //, /*...*/, "...", '...'.
std::string strip_comments_and_strings(const std::string& in) {
  std::string out = in;
  enum class State { kCode, kLine, kBlock, kString, kChar } state = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') state = State::kCode;
        else out[i] = ' ';
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size() && in[i + 1] != '\n') out[++i] = ' ';
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size() && in[i + 1] != '\n') out[++i] = ' ';
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> tokenize(const std::string& stmt) {
  std::istringstream is(stmt);
  std::vector<std::string> tokens;
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------- structural checks --

/// Actor types a raw pointer member may not silently bridge. Observability
/// types (SpanTracer, Tracer, LoopProfiler, ShardAuditor) are deliberately
/// absent: they are per-run sinks, not simulation state.
constexpr std::string_view kActorTypes[] = {"Node", "Link", "Network", "Simulator", "Ledger"};

/// The sim's own randomness module may hold whatever state it needs — it is
/// the one audited source, already per-Simulator.
bool in_randomness_module(const std::string& path) {
  return path.find("sim/random") != std::string::npos;
}

/// Walks brace scopes, classifying each as namespace, record, enum, or
/// body, and runs the shard-state checks on every statement:
///  - namespace scope: mutable-global
///  - record scope:    singleton-accessor, cross-actor-ptr
///  - body scope:      static-local
void structural_scan(const std::string& path, const std::string& stripped,
                     const std::vector<std::string>& raw_lines, std::vector<Finding>& out) {
  enum class Scope { kNamespace, kRecord, kEnum, kBody };
  std::vector<Scope> scopes;
  std::string stmt;
  std::size_t stmt_line = 1;
  std::size_t lineno = 1;
  bool stmt_started = false;

  auto raw_at = [&](std::size_t line) {
    return line - 1 < raw_lines.size() ? trim(raw_lines[line - 1]) : std::string();
  };
  auto top = [&]() { return scopes.empty() ? Scope::kNamespace : scopes.back(); };

  auto flush = [&](const std::string& statement, std::size_t at_line) {
    const std::vector<std::string> tokens = tokenize(statement);
    if (tokens.empty()) return;
    auto has = [&](std::string_view t) { return contains_token(statement, t); };
    const bool immutable = has("const") || has("constexpr") || has("constinit");

    switch (top()) {
      case Scope::kNamespace: {
        // A namespace-scope variable: no '(' (rules out function
        // declarations and call-initialized globals, which are rare and
        // caught at review), not a type/alias/using declaration.
        static const std::string_view kSkipLead[] = {
            "using", "typedef", "template", "struct", "class", "union", "enum",
            "friend", "extern", "namespace", "static_assert", "concept", "return",
        };
        for (std::string_view s : kSkipLead) {
          if (tokens.front() == s) return;
        }
        if (statement.find('(') != std::string::npos) return;
        if (immutable) return;
        if (tokens.size() < 2) return;
        if (in_randomness_module(path)) return;
        out.push_back({path, at_line, "mutable-global",
                       "namespace-scope mutable variable: process-wide state every "
                       "shard would share once the event loop is partitioned",
                       raw_at(at_line), ""});
        return;
      }
      case Scope::kRecord: {
        // Reference must be in the return type (before the parameter list):
        // `static Tracer& global()` is the pattern, `static X f(Y& p)` is not.
        if (tokens.front() == "static" && statement.find('(') != std::string::npos &&
            statement.find('&') < statement.find('(')) {
          out.push_back({path, at_line, "singleton-accessor",
                         "static accessor returning a reference: the surface through "
                         "which process-wide state escapes into every shard",
                         raw_at(at_line), ""});
          return;
        }
        if (statement.find('(') != std::string::npos) return;  // method decl
        if (statement.find('*') == std::string::npos) return;
        for (std::string_view actor : kActorTypes) {
          if (has(actor)) {
            out.push_back({path, at_line, "cross-actor-ptr",
                           "raw pointer member to actor type '" + std::string(actor) +
                               "': a synchronous bridge between components that may "
                               "land in different shards",
                           raw_at(at_line), ""});
            return;
          }
        }
        return;
      }
      case Scope::kBody: {
        if (tokens.front() != "static" && tokens.front() != "thread_local") return;
        if (immutable) return;
        if (in_randomness_module(path)) return;
        out.push_back({path, at_line, "static-local",
                       "mutable function-local static: a hidden global with lazy "
                       "initialization — shards would race on first use and share "
                       "state after it",
                       raw_at(at_line), ""});
        return;
      }
      case Scope::kEnum:
        return;
    }
  };

  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const char c = stripped[i];
    if (c == '\n') {
      ++lineno;
      stmt.push_back(' ');
      continue;
    }
    if (c == '{') {
      Scope s = Scope::kBody;
      if (contains_token(stmt, "namespace")) {
        s = Scope::kNamespace;
      } else if (contains_token(stmt, "enum")) {
        s = Scope::kEnum;
      } else if ((contains_token(stmt, "struct") || contains_token(stmt, "class") ||
                  contains_token(stmt, "union")) &&
                 stmt.find('(') == std::string::npos && stmt.find('=') == std::string::npos) {
        s = Scope::kRecord;
      }
      scopes.push_back(s);
      stmt.clear();
      stmt_started = false;
      continue;
    }
    if (c == '}') {
      if (!scopes.empty()) scopes.pop_back();
      stmt.clear();
      stmt_started = false;
      continue;
    }
    if (c == ';') {
      flush(stmt, stmt_line);
      stmt.clear();
      stmt_started = false;
      continue;
    }
    if (c == ':') {
      const std::string t = trim(stmt);
      if (t == "public" || t == "private" || t == "protected") {
        stmt.clear();
        stmt_started = false;
        continue;
      }
    }
    if (!stmt_started && std::isspace(static_cast<unsigned char>(c)) == 0) {
      stmt_started = true;
      stmt_line = lineno;
    }
    stmt.push_back(c);
  }
}

// ---------------------------------------------------------- line checks --

/// Mutators that, combined with fetching another actor on the same line,
/// mean "reach into that actor and change it" — the pattern that must
/// become an event-queue hop under PDES.
constexpr std::string_view kActorMutators[] = {
    ".add_filter(",  ".remove_filter(", ".renumber(", ".add_address(",
    ".set_local_handler(", ".receive(", ".set_up(",
};

void check_cross_actor_mutation(const std::string& path, std::size_t lineno,
                                const std::string& stripped, const std::string& raw,
                                std::vector<Finding>& out) {
  const bool fetches_actor = stripped.find(".node(") != std::string::npos ||
                             stripped.find("->node(") != std::string::npos ||
                             stripped.find(".link(") != std::string::npos ||
                             stripped.find("->link(") != std::string::npos;
  if (fetches_actor) {
    for (std::string_view mut : kActorMutators) {
      if (stripped.find(mut) != std::string::npos) {
        out.push_back({path, lineno, "cross-actor-mut",
                       "fetches an actor by id and mutates it in the same expression: "
                       "under PDES this mutation must be a scheduled event, not a call",
                       trim(raw), ""});
        return;
      }
    }
  }
  // Route installation into a node's FIB from outside net/: the control
  // plane writing the data plane's per-actor state.
  if (path.find("/net/") == std::string::npos &&
      (stripped.find("forwarding().set_") != std::string::npos ||
       stripped.find("forwarding().clear") != std::string::npos)) {
    out.push_back({path, lineno, "cross-actor-mut",
                   "installs routes into a node's forwarding table from another "
                   "subsystem: cross-actor state write that must become an event "
                   "(or run at a PDES barrier)",
                   trim(raw), ""});
  }
}

/// Pass 1: names of variables/members declared as unordered containers.
void collect_unordered_names(const std::string& stripped_line,
                             std::vector<std::string>& names) {
  static const std::string_view kContainers[] = {"unordered_map", "unordered_set",
                                                 "unordered_multimap", "unordered_multiset"};
  for (std::string_view cont : kContainers) {
    std::size_t pos = stripped_line.find(cont);
    if (pos == std::string::npos) continue;
    // Skip the template argument list, then read the declarator name.
    std::size_t i = stripped_line.find('<', pos);
    if (i == std::string::npos) return;
    int depth = 0;
    for (; i < stripped_line.size(); ++i) {
      if (stripped_line[i] == '<') ++depth;
      if (stripped_line[i] == '>' && --depth == 0) {
        ++i;
        break;
      }
    }
    while (i < stripped_line.size() &&
           std::isspace(static_cast<unsigned char>(stripped_line[i])) != 0) {
      ++i;
    }
    std::string name;
    while (i < stripped_line.size() && is_ident_char(stripped_line[i])) {
      name.push_back(stripped_line[i++]);
    }
    if (!name.empty()) names.push_back(std::move(name));
    return;
  }
}

/// Pass 2: range-for over a collected name — hash-order iteration.
void check_unordered_merge(const std::string& path, std::size_t lineno,
                           const std::string& stripped, const std::string& raw,
                           const std::vector<std::string>& unordered_names,
                           std::vector<Finding>& out) {
  if (stripped.find("for") == std::string::npos) return;
  if (!contains_token(stripped, "for")) return;
  const std::size_t colon = stripped.find(':');
  if (colon == std::string::npos) return;
  for (const std::string& name : unordered_names) {
    std::size_t pos = stripped.find(name, colon);
    while (pos != std::string::npos) {
      const bool left_ok = pos == 0 || !is_ident_char(stripped[pos - 1]);
      const std::size_t end = pos + name.size();
      const bool right_ok = end >= stripped.size() || !is_ident_char(stripped[end]);
      if (left_ok && right_ok) {
        out.push_back({path, lineno, "unordered-merge",
                       "range-for over unordered container '" + name +
                           "': hash-order iteration feeding any output makes merged "
                           "results schedule-dependent",
                       trim(raw), ""});
        return;
      }
      pos = stripped.find(name, pos + 1);
    }
  }
}

// -------------------------------------------------------------- driver ---

std::optional<std::vector<AllowEntry>> load_allowlist(const std::string& file) {
  std::ifstream in(file);
  if (!in) return std::nullopt;
  std::vector<AllowEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const std::size_t sep = t.find(" -- ");
    if (sep == std::string::npos) {
      std::cerr << "sharedlint: allowlist entry missing ' -- justification': " << line << "\n";
      return std::nullopt;
    }
    AllowEntry e;
    e.justification = trim(t.substr(sep + 4));
    std::istringstream is(t.substr(0, sep));
    is >> e.check >> e.path_suffix;
    std::string rest;
    std::getline(is, rest);
    e.line_substring = trim(rest);
    if (e.check.empty() || e.path_suffix.empty() || e.justification.empty()) {
      std::cerr << "sharedlint: malformed allowlist line: " << line << "\n";
      return std::nullopt;
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

const AllowEntry* find_allowed(const Finding& f, const std::vector<AllowEntry>& allow) {
  for (const AllowEntry& e : allow) {
    if (e.check != f.check && e.check != "*") continue;
    if (!ends_with_path(f.file, e.path_suffix)) continue;
    if (!e.line_substring.empty() &&
        f.source_line.find(e.line_substring) == std::string::npos) {
      continue;
    }
    e.used = true;
    return &e;
  }
  return nullptr;
}

void write_finding_json(std::ostream& os, const Finding& f, bool with_justification) {
  os << "    {\"check\": \"" << json_escape(f.check) << "\", \"file\": \""
     << json_escape(f.file) << "\", \"line\": " << f.line << ", \"message\": \""
     << json_escape(f.message) << "\", \"source\": \"" << json_escape(f.source_line) << "\"";
  if (with_justification) {
    os << ", \"justification\": \"" << json_escape(f.justification) << "\"";
  }
  os << "}";
}

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string allowlist_file;
  std::string json_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allowlist") {
      if (i + 1 >= argc) {
        std::cerr << "sharedlint: --allowlist requires a file argument\n";
        return 2;
      }
      allowlist_file = argv[++i];
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "sharedlint: --json requires a file argument\n";
        return 2;
      }
      json_file = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: sharedlint [--allowlist FILE] [--json FILE] DIR...\n";
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: sharedlint [--allowlist FILE] [--json FILE] DIR...\n";
    return 2;
  }

  std::vector<AllowEntry> allow;
  if (!allowlist_file.empty()) {
    auto loaded = load_allowlist(allowlist_file);
    if (!loaded) {
      std::cerr << "sharedlint: cannot read allowlist " << allowlist_file << "\n";
      return 2;
    }
    allow = std::move(*loaded);
  }

  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  for (const std::string& root : roots) {
    if (!fs::exists(root)) {
      std::cerr << "sharedlint: no such path: " << root << "\n";
      return 2;
    }
    std::vector<fs::path> files;
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && scannable(entry.path())) files.push_back(entry.path());
      }
    } else {
      files.push_back(root);
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& p : files) {
      std::ifstream in(p);
      if (!in) {
        std::cerr << "sharedlint: cannot read " << p << "\n";
        return 2;
      }
      std::stringstream buf;
      buf << in.rdbuf();
      const std::string raw = buf.str();
      const std::string stripped = strip_comments_and_strings(raw);
      const std::vector<std::string> raw_lines = split_lines(raw);
      const std::vector<std::string> stripped_lines = split_lines(stripped);
      const std::string path = p.generic_string();

      structural_scan(path, stripped, raw_lines, findings);

      std::vector<std::string> unordered_names;
      for (const std::string& line : stripped_lines) {
        collect_unordered_names(line, unordered_names);
      }
      for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
        const std::string& rawl = i < raw_lines.size() ? raw_lines[i] : stripped_lines[i];
        check_cross_actor_mutation(path, i + 1, stripped_lines[i], rawl, findings);
        check_unordered_merge(path, i + 1, stripped_lines[i], rawl, unordered_names,
                              findings);
      }
      ++files_scanned;
    }
  }

  std::vector<Finding> reported, allowlisted;
  for (Finding& f : findings) {
    if (const AllowEntry* e = find_allowed(f, allow)) {
      f.justification = e->justification;
      allowlisted.push_back(f);
      continue;
    }
    reported.push_back(f);
    std::cerr << f.file << ":" << f.line << ": [" << f.check << "] " << f.message << "\n";
    if (!f.source_line.empty()) std::cerr << "    " << f.source_line << "\n";
  }
  for (const AllowEntry& e : allow) {
    if (!e.used) {
      std::cerr << "sharedlint: warning: unused allowlist entry: " << e.check << " "
                << e.path_suffix << (e.line_substring.empty() ? "" : " " + e.line_substring)
                << "\n";
    }
  }

  if (!json_file.empty()) {
    std::ofstream os(json_file);
    if (!os) {
      std::cerr << "sharedlint: cannot write " << json_file << "\n";
      return 2;
    }
    os << "{\n  \"tool\": \"sharedlint\",\n  \"files_scanned\": " << files_scanned
       << ",\n  \"findings\": [\n";
    for (std::size_t i = 0; i < reported.size(); ++i) {
      write_finding_json(os, reported[i], false);
      os << (i + 1 < reported.size() ? ",\n" : "\n");
    }
    os << "  ],\n  \"allowlisted\": [\n";
    for (std::size_t i = 0; i < allowlisted.size(); ++i) {
      write_finding_json(os, allowlisted[i], true);
      os << (i + 1 < allowlisted.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
  }

  std::cerr << "sharedlint: " << files_scanned << " files, " << reported.size() << " finding"
            << (reported.size() == 1 ? "" : "s") << " (" << allowlisted.size()
            << " allowlisted)\n";
  return reported.empty() ? 0 : 1;
}
