#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# first-party translation unit, against the compile database of a configured
# build directory.
#
# Usage: tools/run_tidy.sh [BUILD_DIR] [-- extra clang-tidy args]
#   BUILD_DIR defaults to the first of build-release, build-asan-ubsan,
#   build that contains a compile_commands.json.
#   CLANG_TIDY=<binary> overrides which clang-tidy to use.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

tidy="${CLANG_TIDY:-}"
if [[ -z "$tidy" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15; do
    if command -v "$candidate" >/dev/null 2>&1; then
      tidy="$candidate"
      break
    fi
  done
fi
if [[ -z "$tidy" ]]; then
  echo "run_tidy.sh: clang-tidy not found on PATH (set CLANG_TIDY=...)." >&2
  echo "The container toolchain may be gcc-only; CI runs the tidy gate." >&2
  exit 3
fi

build_dir="${1:-}"
if [[ -n "$build_dir" ]]; then
  shift
else
  for candidate in build-release build-asan-ubsan build; do
    if [[ -f "$candidate/compile_commands.json" ]]; then
      build_dir="$candidate"
      break
    fi
  done
fi
if [[ -z "$build_dir" || ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_tidy.sh: no compile_commands.json found; configure first, e.g." >&2
  echo "  cmake --preset release" >&2
  exit 3
fi
if [[ "${1:-}" == "--" ]]; then
  shift
fi

mapfile -t sources < <(git ls-files 'src/**/*.cpp' 'tools/**/*.cpp' 'examples/*.cpp')
echo "run_tidy.sh: $tidy over ${#sources[@]} files (compile db: $build_dir)"

jobs="$(nproc 2>/dev/null || echo 2)"
printf '%s\n' "${sources[@]}" |
  xargs -P "$jobs" -n 1 "$tidy" -p "$build_dir" --quiet "$@"
echo "run_tidy.sh: clean"
