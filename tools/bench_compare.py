#!/usr/bin/env python3
"""Compare bench harness --json reports against a committed baseline.

Each report is one JSON object written by bench::run --json (see
bench/harness.hpp): {"experiment": {"id": ...}, "wall_seconds": ...,
"total_events": ..., "events_per_sec": ..., "metrics": {...}}. The baseline
file maps experiment id -> the same summary fields.

The gate is wall time: a report regresses when its wall_seconds exceeds the
baseline's by more than --max-regression (default 10%). Runs faster than
--min-seconds (default 0.05 s) on either side are skipped — below that the
timer resolution and scheduler noise dominate and a ratio is meaningless.
Total-event drift is reported but never fails the gate: event counts change
legitimately whenever a scenario is added or re-parameterised, and the
determinism suite (not this tool) owns that invariant.

Selected *scalar metrics* are gated too, opt-in per bench via METRIC_GATES
below. Those metrics are simulation outcomes, not timings, so for a fixed
invocation they are exactly reproducible on any machine; a drift means the
model's behaviour changed, not that the runner was slow. The gate is exact
by default; --metric-tolerance allows an absolute slack for metrics that
are legitimately sensitive (none today). Benches or metrics absent from
the baseline's "metrics" object are reported and skipped, so an old-format
baseline keeps working until the next --update.

Google-benchmark JSON (bench_micro --benchmark_format=json, recognised by
its "benchmarks" array) is gated too, under the reserved baseline id
"MICRO". The gated quantity is items_per_second — the substrate-throughput
headline the micro benches exist to publish — and the gate direction is
inverted relative to wall time: a *drop* beyond --max-regression fails.
This is the guard that keeps always-compiled instrumentation hooks (span
tracer, shard auditor) honest about their disabled-path cost: the hot
loops bench_micro times run with every such pointer null, so a throughput
drop means the "one null-pointer branch per hook site" contract broke.

Scale reports (bench harness --scale-json, recognised by their "scale"
key) are compared in SCALE mode, normally against the committed
SCALE_PROFILE.json (pass it as --baseline). All SCALE_TRACKED fields are
compared exactly and drift is reported; critical_path_length and
imbalance_ratio additionally gate — growth beyond --max-regression fails,
since those two bound the predicted PDES speedup from the causality and
load-balance side respectively.

Memory reports (bench harness --mem-json, recognised by their "mem" key)
are compared in MEM mode, normally against the committed MEM_PROFILE.json
(pass it as --baseline). All MEM_TRACKED fields are compared exactly and
drift is reported; live_bytes_per_actor and allocs_per_event additionally
gate — growth beyond --max-regression fails, since those two are the
per-unit memory headlines the million-actor refactor budgets against
(footprint per actor and allocator churn per dispatched event). They are
model quantities (kind-constant unit sizes x deterministic counts), never
RSS, so for a fixed invocation they are exactly reproducible anywhere.

Harness reports carry "sim_events": null when no simulator ran (sim-less
model benches). Those entries are flagged as ungated rather than silently
passing; a null where the baseline has a real count fails the gate, since
it means event counting broke.

--trajectory FILE appends one JSON line per report — experiment id plus
the gated metrics — forming a longitudinal record of how each headline
number moves across commits (CI stores it as an artifact).

--speedup compares exactly two reports of the *same* experiment — a
reference run and a parallel run (e.g. --shards 1 vs --shards 8) — and
prints the wall-clock speedup. With --min-speedup N the pair gates: a
speedup below N fails. CI uses --min-speedup 0 to publish the measured
number as an artifact without gating (shared runners have 2-4 cores, so a
hard parallel-speedup gate would only measure the runner); verify the
real ratio on a many-core machine. When either side runs faster than
--min-seconds the ratio is "unmeasurable" — scheduler noise at that
scale can make a ratio arbitrarily large or small (historically this
printed inf when the parallel side rounded to zero), so the pair is
reported as unmeasurable and passes.

Exec reports (bench harness --exec-json, recognised by their "exec" key)
are compared in EXEC mode. They are wall-clock measurements —
non-deterministic by design and exempt from the byte-identity contract —
so there is no baseline entry to diff against. Instead the tracked
numbers (windows, workers, measured vs predicted speedup, loss split)
are printed for the artifact record, and one absolute gate applies:
--max-barrier-fraction FRAC fails the report when the validation block
attributes more than FRAC of window wall time to barrier waits — the
signal that the barrier protocol itself, not load imbalance, is eating
the parallel headroom.

Usage:
  bench_compare.py --baseline BENCH_baseline.json report.json...
  bench_compare.py --baseline BENCH_baseline.json --update report.json...
  bench_compare.py --speedup serial.json sharded.json [--min-speedup N]

--update rewrites the given reports' entries in the baseline, preserving
entries for benches not among the reports (run it on the reference machine
after an intentional perf change and commit the result).
Exit status: 0 = no regression, 1 = regression, 2 = usage/schema error.
"""

from __future__ import annotations

import argparse
import json
import sys

# Per-experiment allowlist of scalar metrics that must match the baseline.
# Opt-in and deliberately short: every name here must be a deterministic
# function of (code, seed, invocation) — means over replicas qualify, wall
# times never do.
METRIC_GATES: dict[str, list[str]] = {
    # E5 (bench_qos_deployment): the paper's greed/fear grid headline.
    # The ".mean" names exist when the bench runs with --replicas > 1, as
    # the CI gate invocation does; single runs simply have nothing to gate.
    "E5": [
        "deployment-regimes.regime=0.deploy_fraction.mean",
        "deployment-regimes.regime=3.deploy_fraction.mean",
        "deployment-regimes.regime=4.app_price.mean",
    ],
    # E6 (bench_firewall): the protocol-vs-trust firewall contrast.
    "E6": [
        "firewall-variants.variant=1.attack_delivered.mean",
        "firewall-variants.variant=1.novel_app_delivered.mean",
        "firewall-variants.variant=2.novel_app_delivered.mean",
    ],
}


# Reserved baseline id for the Google-benchmark micro report. bench_micro
# has no harness "experiment" — all its benchmarks live under this one key.
MICRO_ID = "MICRO"

# Scale-report fields compared exactly (they are deterministic functions of
# (code, seed, invocation), like gated metrics). critical_path_length and
# imbalance_ratio additionally *gate*: growth beyond --max-regression fails,
# because each one bounds the PDES speedup from a different side (span
# causality vs load balance) and silent growth would erode the parallel
# headroom the committed profile promises.
SCALE_GATED = ("critical_path_length", "imbalance_ratio")
SCALE_TRACKED = SCALE_GATED + (
    "work", "work_span_ratio", "shards", "cross_shard_events",
    "speedup_k8", "speedup_bound",
)

# Memory-report fields compared exactly (model quantities: kind-constant
# unit sizes times deterministic counts, never RSS). The two gated ones are
# the per-unit headlines the million-actor refactor budgets against:
# live_bytes_per_actor (steady footprint per registered actor) and
# allocs_per_event (allocator churn per dispatched event — the number the
# arena/SoA work must drive toward zero). Growth beyond --max-regression
# fails; everything else drifting is reported as a scenario change.
MEM_GATED = ("live_bytes_per_actor", "allocs_per_event")
MEM_TRACKED = MEM_GATED + (
    "work", "runs", "peak_live_bytes", "actor_count", "alloc_count",
    "sites",
)


def load_report(path: str) -> dict:
    with open(path) as f:
        d = json.load(f)
    if "benchmarks" in d:  # Google-benchmark --benchmark_format=json
        if not isinstance(d["benchmarks"], list) or not d["benchmarks"]:
            raise ValueError(f"{path}: empty Google-benchmark report")
        d["experiment"] = {"id": MICRO_ID}
        return d
    if "scale" in d:  # harness --scale-json report
        if not d.get("experiment", {}).get("id"):
            raise ValueError(f"{path}: scale report with no experiment id")
        return d
    if "exec" in d:  # harness --exec-json report
        if not d.get("experiment", {}).get("id"):
            raise ValueError(f"{path}: exec report with no experiment id")
        return d
    if "mem" in d:  # harness --mem-json report
        if not d.get("experiment", {}).get("id"):
            raise ValueError(f"{path}: mem report with no experiment id")
        return d
    for key in ("experiment", "wall_seconds", "total_events"):
        if key not in d:
            raise ValueError(f"{path}: not a harness report (missing {key!r})")
    if not d["experiment"].get("id"):
        raise ValueError(f"{path}: empty experiment id")
    return d


def scale_summary(report: dict) -> dict:
    """The SCALE_TRACKED subset of a --scale-json report."""
    s = report["scale"]
    shards = sum(1 for e in s.get("shards", [])
                 if e.get("shard") not in ("none", "shared"))
    k8 = next((pt["speedup"] for pt in s["speedup"]["curve"] if pt["k"] == 8),
              None)
    return {
        "work": s["work"],
        "critical_path_length": s["critical_path"]["length"],
        "work_span_ratio": s["critical_path"]["work_span_ratio"],
        "imbalance_ratio": s["imbalance"]["ratio"],
        "shards": shards,
        "cross_shard_events": s["cross_shard_events"],
        "speedup_k8": k8,
        "speedup_bound": s["speedup"]["bound"],
    }


def compare_scale(bench_id: str, report: dict, base: dict,
                  max_regression: float) -> bool:
    """SCALE mode: exact-compare the tracked fields, gate the gated ones."""
    failed = False
    cur = scale_summary(report)
    for name in SCALE_TRACKED:
        value, expected = cur.get(name), base.get(name)
        if expected is None:
            print(f"{bench_id}: scale.{name}: not in baseline — run with "
                  f"--update to adopt it")
            continue
        if name in SCALE_GATED:
            growth = ((value - expected) / expected if expected else
                      (0.0 if not value else float("inf")))
            verdict = "REGRESSION" if growth > max_regression else "ok"
            print(f"{bench_id}: scale.{name}: {value!r} vs baseline "
                  f"{expected!r} ({growth:+.1%}) {verdict}")
            if verdict == "REGRESSION":
                failed = True
        elif value != expected:
            print(f"{bench_id}: scale.{name}: {value!r} vs baseline "
                  f"{expected!r} — drifted (scenario change, not gated)")
        else:
            print(f"{bench_id}: scale.{name}: {value!r} ok")
    return failed


def mem_summary(report: dict) -> dict:
    """The MEM_TRACKED subset of a --mem-json report."""
    m = report["mem"]
    lb = m["live_bytes"]
    return {
        "work": m["work"],
        "runs": m["runs"],
        "peak_live_bytes": lb["peak"],
        "actor_count": lb["actor_count"],
        "live_bytes_per_actor": lb["per_actor"],
        "alloc_count": lb["alloc_count"],
        "allocs_per_event": lb["allocs_per_event"],
        "sites": len(m.get("sites", [])),
    }


def compare_mem(bench_id: str, report: dict, base: dict,
                max_regression: float) -> bool:
    """MEM mode: exact-compare the tracked fields, gate the gated ones."""
    failed = False
    cur = mem_summary(report)
    for name in MEM_TRACKED:
        value, expected = cur.get(name), base.get(name)
        if expected is None:
            print(f"{bench_id}: mem.{name}: not in baseline — run with "
                  f"--update to adopt it")
            continue
        if name in MEM_GATED:
            growth = ((value - expected) / expected if expected else
                      (0.0 if not value else float("inf")))
            verdict = "REGRESSION" if growth > max_regression else "ok"
            print(f"{bench_id}: mem.{name}: {value!r} vs baseline "
                  f"{expected!r} ({growth:+.1%}) {verdict}")
            if verdict == "REGRESSION":
                failed = True
        elif value != expected:
            print(f"{bench_id}: mem.{name}: {value!r} vs baseline "
                  f"{expected!r} — drifted (scenario change, not gated)")
        else:
            print(f"{bench_id}: mem.{name}: {value!r} ok")
    return failed


def compare_exec(bench_id: str, report: dict,
                 max_barrier_fraction: float | None) -> bool:
    """EXEC mode: print the wall-clock record, gate barrier overhead.

    No baseline diff — exec numbers are timings, and the gate is absolute:
    barrier_overhead_fraction must stay under --max-barrier-fraction (when
    given). Everything else is published for the artifact trail.
    """
    ex = report["exec"]
    v = ex.get("validation")
    if not isinstance(v, dict):
        print(f"{bench_id}: exec report has no validation block — profiler "
              f"recorded no runs REGRESSION")
        return True
    print(f"{bench_id}: exec: {ex.get('runs', 0)} runs, "
          f"{ex.get('windows', 0)} windows, {v.get('workers', 0)} workers, "
          f"{ex.get('elapsed_seconds', 0.0):.4f}s wall")
    print(f"{bench_id}:   speedup {v.get('measured_speedup', 0.0):.2f}x "
          f"measured vs {v.get('predicted_speedup', 0.0):.2f}x predicted "
          f"(mean window error {v.get('mean_window_error', 0.0):.1%})")
    loss = v.get("loss", {})
    print(f"{bench_id}:   loss: imbalance "
          f"{loss.get('imbalance_seconds', 0.0):.4f}s, barrier "
          f"{loss.get('barrier_seconds', 0.0):.4f}s, drain "
          f"{loss.get('drain_seconds', 0.0):.4f}s — dominant "
          f"{loss.get('dominant', 'none')}")
    frac = v.get("barrier_overhead_fraction", 0.0)
    if max_barrier_fraction is None:
        print(f"{bench_id}:   barrier overhead {frac:.1%} (report only)")
        return False
    verdict = "REGRESSION" if frac > max_barrier_fraction else "ok"
    print(f"{bench_id}:   barrier overhead {frac:.1%} vs allowed "
          f"{max_barrier_fraction:.1%} {verdict}")
    return verdict == "REGRESSION"


def micro_throughputs(report: dict) -> dict:
    """benchmark name -> items_per_second, for benchmarks that publish it.

    Aggregate rows (mean/median/stddev from --benchmark_repetitions) are
    skipped so a repetition run gates on the same names as a plain run.
    """
    out = {}
    for b in report["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        ips = b.get("items_per_second")
        if ips is not None:
            out[b["name"]] = ips
    return out


def gated_metrics(bench_id: str, report: dict) -> dict:
    """The subset of this report's metrics that METRIC_GATES tracks."""
    metrics = report.get("metrics", {})
    return {name: metrics[name]
            for name in METRIC_GATES.get(bench_id, []) if name in metrics}


def summarize(report: dict) -> dict:
    bench_id = report["experiment"]["id"]
    if bench_id == MICRO_ID:
        return {"items_per_second": micro_throughputs(report)}
    if "scale" in report:
        return scale_summary(report)
    if "mem" in report:
        return mem_summary(report)
    return {
        "wall_seconds": report["wall_seconds"],
        "total_events": report["total_events"],
        # None (JSON null) marks a sim-less model bench: no simulator ran,
        # so there is no event throughput to gate — distinct from a broken
        # zero.
        "sim_events": report.get("sim_events"),
        "events_per_sec": report.get("events_per_sec"),
        "metrics": gated_metrics(bench_id, report),
    }


def compare_micro(report: dict, base: dict, max_regression: float) -> bool:
    """Gates micro throughput; returns True when something regressed."""
    failed = False
    base_ips = base.get("items_per_second", {})
    for name, cur in sorted(micro_throughputs(report).items()):
        ref = base_ips.get(name)
        if ref is None:
            print(f"{MICRO_ID}: {name}: not in baseline — run with --update "
                  f"to adopt it")
            continue
        drop = (ref - cur) / ref if ref > 0 else 0.0
        verdict = "REGRESSION" if drop > max_regression else "ok"
        print(f"{MICRO_ID}: {name}: {cur:,.0f} items/s vs baseline "
              f"{ref:,.0f} ({-drop:+.1%}) {verdict}")
        if verdict == "REGRESSION":
            failed = True
    return failed


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="BENCH_baseline.json",
                    help="baseline file (default: %(default)s)")
    ap.add_argument("--max-regression", type=float, default=0.10, metavar="FRAC",
                    help="allowed fractional wall-time growth (default: %(default)s)")
    ap.add_argument("--min-seconds", type=float, default=0.05, metavar="SEC",
                    help="skip comparisons when both sides run faster than "
                         "this (default: %(default)s)")
    ap.add_argument("--metric-tolerance", type=float, default=0.0, metavar="ABS",
                    help="allowed absolute drift for gated metrics "
                         "(default: %(default)s — exact)")
    ap.add_argument("--trajectory", metavar="FILE",
                    help="append one JSON line per report (id + gated "
                         "metrics) to this file")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the given reports")
    ap.add_argument("--speedup", action="store_true",
                    help="compare exactly two reports of the same experiment "
                         "(reference first, parallel second) and print the "
                         "wall-clock speedup")
    ap.add_argument("--min-speedup", type=float, default=0.0, metavar="RATIO",
                    help="with --speedup: fail when reference/parallel wall "
                         "time falls below this ratio (default: %(default)s "
                         "— report only)")
    ap.add_argument("--max-barrier-fraction", type=float, default=None,
                    metavar="FRAC",
                    help="for --exec-json reports: fail when the validation "
                         "block attributes more than this fraction of "
                         "window wall time to barrier waits (default: "
                         "report only)")
    ap.add_argument("reports", nargs="+", help="harness --json output files")
    args = ap.parse_args()

    if args.speedup:
        if len(args.reports) != 2:
            print("bench_compare: --speedup needs exactly two reports "
                  "(reference, parallel)", file=sys.stderr)
            return 2
        try:
            ref, par = (load_report(p) for p in args.reports)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"bench_compare: {e}", file=sys.stderr)
            return 2
        ids = (ref["experiment"]["id"], par["experiment"]["id"])
        if ids[0] != ids[1]:
            print(f"bench_compare: --speedup reports disagree on the "
                  f"experiment: {ids[0]!r} vs {ids[1]!r}", file=sys.stderr)
            return 2
        ref_s, par_s = ref["wall_seconds"], par["wall_seconds"]
        # Below the noise floor the ratio means nothing (and a parallel
        # side rounding to zero used to print inf) — say so instead of
        # publishing a bogus number, and pass: there is nothing to gate.
        if min(ref_s, par_s) < args.min_seconds:
            print(f"{ids[0]}: speedup unmeasurable ({ref_s:.4f}s reference "
                  f"/ {par_s:.4f}s parallel — a side is under "
                  f"--min-seconds {args.min_seconds:g}, timer noise "
                  f"dominates)")
            return 0
        speedup = ref_s / par_s
        verdict = "ok" if speedup >= args.min_speedup else "BELOW TARGET"
        print(f"{ids[0]}: speedup {speedup:.2f}x ({ref_s:.4f}s reference / "
              f"{par_s:.4f}s parallel, target >= {args.min_speedup:g}x) "
              f"{verdict}")
        return 0 if speedup >= args.min_speedup else 1

    try:
        reports = {r["experiment"]["id"]: r
                   for r in (load_report(p) for p in args.reports)}
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    if args.trajectory:
        with open(args.trajectory, "a") as f:
            for bench_id, report in sorted(reports.items()):
                if bench_id == MICRO_ID:
                    entry = {"experiment": bench_id,
                             "items_per_second": micro_throughputs(report)}
                elif "mem" in report:
                    s = mem_summary(report)
                    entry = {"experiment": bench_id,
                             "mem": {k: s[k] for k in MEM_GATED}}
                else:
                    entry = {"experiment": bench_id,
                             "total_events": report["total_events"],
                             "metrics": gated_metrics(bench_id, report)}
                f.write(json.dumps(entry, sort_keys=True) + "\n")
        print(f"bench_compare: appended {len(reports)} trajectory "
              f"entries to {args.trajectory}")

    if args.update:
        # Merge, don't rewrite: refreshing the micro baseline must not drop
        # the harness entries, and vice versa.
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except (OSError, json.JSONDecodeError):
            baseline = {}
        for bench_id, r in sorted(reports.items()):
            baseline[bench_id] = summarize(r)
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"bench_compare: wrote {args.baseline} ({len(baseline)} benches)")
        return 0

    if all("exec" in r for r in reports.values()):
        baseline = {}  # exec reports gate absolutely; no baseline needed
    else:
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_compare: cannot read baseline: {e}", file=sys.stderr)
            return 2

    failed = False
    for bench_id, report in sorted(reports.items()):
        if "exec" in report:  # absolute gate, no baseline entry
            failed |= compare_exec(bench_id, report,
                                   args.max_barrier_fraction)
            continue
        base = baseline.get(bench_id)
        if base is None:
            print(f"{bench_id}: not in baseline — run with --update to adopt it")
            continue
        if bench_id == MICRO_ID:
            failed |= compare_micro(report, base, args.max_regression)
            continue
        if "scale" in report:
            failed |= compare_scale(bench_id, report, base, args.max_regression)
            continue
        if "mem" in report:
            failed |= compare_mem(bench_id, report, base, args.max_regression)
            continue
        cur_s, base_s = report["wall_seconds"], base["wall_seconds"]
        if max(cur_s, base_s) < args.min_seconds:
            print(f"{bench_id}: {cur_s:.4f}s vs {base_s:.4f}s — below "
                  f"--min-seconds {args.min_seconds}, skipped")
            continue
        growth = (cur_s - base_s) / base_s if base_s > 0 else float("inf")
        verdict = "REGRESSION" if growth > args.max_regression else "ok"
        print(f"{bench_id}: {cur_s:.4f}s vs baseline {base_s:.4f}s "
              f"({growth:+.1%}) {verdict}")
        if report["total_events"] != base["total_events"]:
            print(f"{bench_id}:   note: total_events {base['total_events']} -> "
                  f"{report['total_events']} (scenario change, not gated)")
        if verdict == "REGRESSION":
            failed = True
        # Flag (never silently pass) entries with no event throughput. A
        # sim-less bench is expected to be null on both sides; a zero where
        # the baseline has events means instrumentation broke.
        if report.get("sim_events") is None:
            if base.get("sim_events") is None and "sim_events" in base:
                print(f"{bench_id}:   sim-less bench — throughput ungated")
            elif base.get("sim_events"):
                print(f"{bench_id}:   sim_events null but baseline has "
                      f"{base['sim_events']} — event counting broke "
                      f"REGRESSION")
                failed = True
            else:
                print(f"{bench_id}:   sim_events absent from baseline — run "
                      f"with --update to adopt the null marker")

        base_metrics = base.get("metrics")
        if base_metrics is None and METRIC_GATES.get(bench_id):
            print(f"{bench_id}:   metrics not in baseline — run with "
                  f"--update to adopt them")
            continue
        for name, value in sorted(gated_metrics(bench_id, report).items()):
            if name not in (base_metrics or {}):
                print(f"{bench_id}:   {name}: not in baseline, skipped")
                continue
            expected = base_metrics[name]
            drift = abs(value - expected)
            if drift > args.metric_tolerance:
                print(f"{bench_id}:   {name}: {value!r} vs baseline "
                      f"{expected!r} METRIC DRIFT")
                failed = True
            else:
                print(f"{bench_id}:   {name}: {value!r} ok")

    if failed:
        print(f"bench_compare: wall time grew (or micro throughput fell) "
              f"more than {args.max_regression:.0%}, or a gated metric "
              f"drifted from {args.baseline}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
