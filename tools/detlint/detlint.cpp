// detlint — determinism lint for the tussle-net source tree.
//
// The simulator's headline property is bit-exact replay: the same seed must
// produce the same event ordering and the same stats on every run, on every
// compiler. This tool scans source files for constructs that silently break
// that contract and reports them, unless an allowlist entry records that the
// use was audited and found safe.
//
// Checks:
//   banned-random      std::random_device / rand() / wall-clock time /
//                      stdlib distributions anywhere outside src/sim/random,
//                      the one audited randomness module.
//   unordered-iter     std::unordered_{map,set} in hot-path subsystems
//                      (sim, net, routing, econ) — iteration order varies
//                      across libstdc++ versions and with pointer hashing;
//                      lookup-only uses must be allowlisted with a reason.
//   pointer-key-order  std::map/std::set keyed on a raw pointer: ordering
//                      then depends on allocation addresses, which ASLR
//                      randomizes between runs.
//   uninit-member      scalar struct/class members without a default
//                      initializer — reads of indeterminate values are both
//                      UB and a classic source of run-to-run divergence.
//   span-wall-clock    any wall-clock source (wall_now_seconds, <chrono>
//                      clocks) inside the causal-span module (sim/span*):
//                      span records carry simulated time only, or exported
//                      traces stop being byte-identical across runs.
//   timeseries-wall-clock
//                      the same wall-clock token list inside the time-series
//                      recorder (sim/timeseries*): sample ticks come from the
//                      simulated clock only, so CSV/JSON/dashboard exports
//                      stay byte-identical at any --jobs setting.
//   scale-wall-clock   the same wall-clock token list inside the scale
//                      profiler (sim/scale_profile*): shard-load cells,
//                      lookahead windows, and speedup predictions are
//                      functions of simulated time only, so SCALE_PROFILE
//                      reports stay byte-identical at any --jobs setting.
//   exec-wall-clock    every call site of wall_now_seconds(), the project's
//                      one audited wall-clock helper, anywhere in the tree.
//                      Wall time may feed observability exports (loop
//                      profiler, heartbeat, exec profiler) but never event
//                      order or a simulated value, so each call site must be
//                      audited and allowlisted with its data-flow argument.
//   scale-merge-order  hash containers inside the scale profiler: its
//                      accumulation structures are iterated at merge and
//                      export points, so every one must be an ordered
//                      container — hash order would make the merged report
//                      depend on the stdlib, not the seed.
//   mem-wall-clock     the same wall-clock token list inside the memory
//                      profiler (sim/mem_profile*): live-bytes, lifetimes,
//                      and locality scores are model units attached to
//                      simulated time — never RSS, never a malloc hook — so
//                      MEM_PROFILE reports stay byte-identical at any
//                      --jobs and --shards setting.
//   mem-merge-order    hash containers inside the memory profiler: same
//                      merge/export argument as scale-merge-order.
//   hot-path-alloc     raw `new`/`delete` or std::make_shared in src/net or
//                      src/sim: the million-actor refactor (ROADMAP item 1)
//                      moves per-packet and per-event churn into arenas and
//                      pools, and the MemProfiler's allocs-per-event gate
//                      only binds if new churn cannot appear silently. Each
//                      remaining direct allocation must be audited and
//                      allowlisted with the reason it is not per-packet
//                      churn ("= delete" declarations are ignored).
//   static-local       mutable function-local `static` in a hot-path
//                      subsystem: a hidden global whose lazy init races
//                      under the planned sharded event loop and whose state
//                      leaks between runs in one process (see also
//                      tools/sharedlint, which flags these repo-wide).
//   unordered-merge    range-for iteration over a variable declared as an
//                      unordered container: hash-order iteration feeding
//                      merged or exported output makes results depend on
//                      the stdlib's hash, not the seed.
//
// Usage: detlint [--allowlist FILE] DIR...
// Exit:  0 clean, 1 unallowlisted violations, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;   // path as scanned (relative to the scan root if given so)
  std::size_t line;   // 1-based
  std::string check;
  std::string message;
  std::string source_line;
};

struct AllowEntry {
  std::string check;
  std::string path_suffix;
  std::string line_substring;  // empty = any line in the file
  mutable bool used = false;
};

// ------------------------------------------------------------ utilities --

bool ends_with_path(const std::string& path, const std::string& suffix) {
  if (suffix.size() > path.size()) return false;
  if (!std::equal(suffix.rbegin(), suffix.rend(), path.rbegin())) return false;
  // Require the match to start at a path-component boundary.
  const std::size_t start = path.size() - suffix.size();
  return start == 0 || path[start - 1] == '/';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True if `token` occurs in `text` bounded by non-identifier characters.
bool contains_token(std::string_view text, std::string_view token) {
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end == text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// Replaces comments and string/char literal contents with spaces, keeping
/// newlines so line numbers survive. Handles //, /*...*/, "...", '...'.
std::string strip_comments_and_strings(const std::string& in) {
  std::string out = in;
  enum class State { kCode, kLine, kBlock, kString, kChar } state = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') state = State::kCode;
        else out[i] = ' ';
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size() && in[i + 1] != '\n') out[++i] = ' ';
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size() && in[i + 1] != '\n') out[++i] = ' ';
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

// ----------------------------------------------------------- the checks --

/// Identifiers that pull in wall-clock time, OS entropy, or stdlib random
/// machinery whose output differs across standard-library implementations.
constexpr std::string_view kBannedRandomTokens[] = {
    "random_device", "rand", "srand", "random", "drand48", "lrand48",
    "mrand48", "srand48", "getpid", "gettimeofday", "clock_gettime",
    "system_clock", "steady_clock", "high_resolution_clock", "mt19937",
    "mt19937_64", "minstd_rand", "default_random_engine",
    "uniform_int_distribution", "uniform_real_distribution",
    "normal_distribution", "exponential_distribution", "bernoulli_distribution",
    "poisson_distribution", "discrete_distribution",
};

// `time(` specifically (bare token "time" would flag SimTime etc.).
constexpr std::string_view kBannedRandomCalls[] = {"time (", "time("};

bool in_randomness_module(const std::string& path) {
  return path.find("sim/random") != std::string::npos;
}

/// Wall-clock sources that must never appear in the span-tracing module.
/// banned-random already catches the stdlib clocks; this list adds the
/// project's own (audited) wall-clock helper and the <chrono> umbrella, so
/// a span timestamp cannot be smuggled in through either route.
constexpr std::string_view kSpanWallClockTokens[] = {
    "wall_now_seconds", "chrono", "clock",
};

bool in_span_module(const std::string& path) {
  return path.find("sim/span") != std::string::npos;
}

/// The time-series recorder has the same contract as the span tracer: ticks
/// are simulated time only, so exports are byte-identical across runs and
/// --jobs settings. Same token list, its own check name.
bool in_timeseries_module(const std::string& path) {
  return path.find("sim/timeseries") != std::string::npos;
}

/// The scale profiler extends that contract to its speedup model: every
/// quantity in a SCALE_PROFILE report (shard-load cells, lookahead windows,
/// barrier costs) derives from simulated time and event counts only.
bool in_scale_module(const std::string& path) {
  return path.find("sim/scale_profile") != std::string::npos;
}

/// The memory profiler carries the same contract again: every quantity in a
/// MEM_PROFILE report (live bytes, lifetimes, locality scores) is a model
/// unit attached to simulated time — never RSS, never a malloc hook.
bool in_mem_module(const std::string& path) {
  return path.find("sim/mem_profile") != std::string::npos;
}

bool in_hot_path(const std::string& path) {
  for (const char* dir : {"/sim/", "/net/", "/routing/", "/econ/"}) {
    if (path.find(dir) != std::string::npos) return true;
  }
  return false;
}

/// Where the hot-path-alloc check applies: the subsystems whose per-packet /
/// per-event churn the MemProfiler meters and the arena refactor targets.
bool in_alloc_hot_path(const std::string& path) {
  for (const char* dir : {"/sim/", "/net/"}) {
    if (path.find(dir) != std::string::npos) return true;
  }
  return false;
}

void check_line_tokens(const std::string& path, std::size_t lineno,
                       const std::string& stripped, const std::string& raw,
                       std::vector<Violation>& out) {
  if (!in_randomness_module(path)) {
    for (std::string_view tok : kBannedRandomTokens) {
      if (contains_token(stripped, tok)) {
        out.push_back({path, lineno, "banned-random",
                       "non-deterministic or non-portable randomness source '" +
                           std::string(tok) + "' outside sim/random",
                       trim(raw)});
      }
    }
    for (std::string_view call : kBannedRandomCalls) {
      if (std::string_view(stripped).find(call) != std::string_view::npos &&
          !contains_token(stripped, "next_time") && !contains_token(stripped, "sent_time")) {
        // contains "time(" as a bare call, not e.g. next_time()
        std::size_t pos = stripped.find(call);
        const bool left_ok = pos == 0 || !is_ident_char(stripped[pos - 1]);
        if (left_ok) {
          out.push_back({path, lineno, "banned-random",
                         "wall-clock time() call outside sim/random", trim(raw)});
        }
        break;
      }
    }
  }
  if (in_span_module(path)) {
    for (std::string_view tok : kSpanWallClockTokens) {
      if (contains_token(stripped, tok)) {
        out.push_back({path, lineno, "span-wall-clock",
                       "wall-clock source '" + std::string(tok) +
                           "' in the span module: span records carry simulated "
                           "time only, or traces diverge run to run",
                       trim(raw)});
      }
    }
  }
  if (in_timeseries_module(path)) {
    for (std::string_view tok : kSpanWallClockTokens) {
      if (contains_token(stripped, tok)) {
        out.push_back({path, lineno, "timeseries-wall-clock",
                       "wall-clock source '" + std::string(tok) +
                           "' in the time-series recorder: sample ticks carry "
                           "simulated time only, or exports diverge run to run",
                       trim(raw)});
      }
    }
  }
  if (in_scale_module(path)) {
    for (std::string_view tok : kSpanWallClockTokens) {
      if (contains_token(stripped, tok)) {
        out.push_back({path, lineno, "scale-wall-clock",
                       "wall-clock source '" + std::string(tok) +
                           "' in the scale profiler: shard loads, lookahead "
                           "windows, and speedup predictions derive from "
                           "simulated time only, or SCALE_PROFILE reports "
                           "diverge across runs and --jobs settings",
                       trim(raw)});
      }
    }
    for (const char* tok : {"unordered_map", "unordered_set", "unordered_multimap",
                            "unordered_multiset", "flat_hash_map", "flat_hash_set"}) {
      if (contains_token(stripped, tok)) {
        out.push_back({path, lineno, "scale-merge-order",
                       std::string(tok) +
                           " in the scale profiler: accumulation structures are "
                           "iterated at merge/export points, so they must be "
                           "ordered containers or the merged report depends on "
                           "the stdlib's hash, not the seed",
                       trim(raw)});
        break;
      }
    }
  }
  if (in_mem_module(path)) {
    for (std::string_view tok : kSpanWallClockTokens) {
      if (contains_token(stripped, tok)) {
        out.push_back({path, lineno, "mem-wall-clock",
                       "wall-clock source '" + std::string(tok) +
                           "' in the memory profiler: live-bytes, lifetimes, "
                           "and locality scores are model units attached to "
                           "simulated time — never RSS — or MEM_PROFILE "
                           "reports diverge across runs, --jobs, and --shards "
                           "settings",
                       trim(raw)});
      }
    }
    for (const char* tok : {"unordered_map", "unordered_set", "unordered_multimap",
                            "unordered_multiset", "flat_hash_map", "flat_hash_set"}) {
      if (contains_token(stripped, tok)) {
        out.push_back({path, lineno, "mem-merge-order",
                       std::string(tok) +
                           " in the memory profiler: accumulation structures "
                           "are iterated at merge/export points, so they must "
                           "be ordered containers or the merged report depends "
                           "on the stdlib's hash, not the seed",
                       trim(raw)});
        break;
      }
    }
  }
  // Every call site of the audited wall-clock helper. The span/timeseries/
  // scale/mem checks above already ban the token outright inside their
  // modules, so skip those here — one line should not report twice.
  if (!in_span_module(path) && !in_timeseries_module(path) && !in_scale_module(path) &&
      !in_mem_module(path) && contains_token(stripped, "wall_now_seconds")) {
    out.push_back({path, lineno, "exec-wall-clock",
                   "wall_now_seconds call site: wall-clock readings may feed "
                   "observability exports only, never event order or a "
                   "simulated value — audit the site and allowlist it",
                   trim(raw)});
  }
  if (in_hot_path(path)) {
    for (const char* tok : {"unordered_map", "unordered_set", "unordered_multimap",
                            "unordered_multiset"}) {
      if (contains_token(stripped, tok)) {
        out.push_back({path, lineno, "unordered-iter",
                       std::string("std::") + tok +
                           " in a hot-path subsystem: iteration order is not "
                           "reproducible across stdlib versions",
                       trim(raw)});
        break;
      }
    }
  }
  // Direct heap allocation in the packet/event subsystems. Deleted special
  // members ("= delete") are declarations, not allocations.
  if (in_alloc_hot_path(path) && stripped.find("= delete") == std::string::npos &&
      stripped.find("=delete") == std::string::npos) {
    for (const char* tok : {"new", "delete", "make_shared"}) {
      if (contains_token(stripped, tok)) {
        out.push_back({path, lineno, "hot-path-alloc",
                       std::string("'") + tok +
                           "' in a packet/event hot-path subsystem: per-packet "
                           "or per-event heap churn is what the arena/pool "
                           "refactor removes and the MemProfiler's "
                           "allocs-per-event gate meters — audit the site and "
                           "allowlist it with why it is not per-packet churn",
                       trim(raw)});
        break;
      }
    }
  }
  // std::map< T* ...> / std::set< T* ...> — pointer-keyed ordering.
  for (const char* tmpl : {"std::map<", "std::set<", "std::multimap<", "std::multiset<"}) {
    std::size_t pos = stripped.find(tmpl);
    if (pos == std::string::npos) continue;
    // Inspect the first template argument (up to the first ',' or matching '>').
    std::size_t i = pos + std::string_view(tmpl).size();
    int depth = 0;
    std::string first_arg;
    for (; i < stripped.size(); ++i) {
      const char c = stripped[i];
      if (c == '<') ++depth;
      if (c == '>' && depth-- == 0) break;
      if (c == ',' && depth == 0) break;
      first_arg.push_back(c);
    }
    if (first_arg.find('*') != std::string::npos) {
      out.push_back({path, lineno, "pointer-key-order",
                     "ordered container keyed on a raw pointer: ordering depends "
                     "on allocation addresses, which vary run to run",
                     trim(raw)});
    }
  }
}

/// Scalar types whose members must carry a default initializer.
bool is_scalar_type(const std::vector<std::string>& type_tokens) {
  static const std::string_view kScalars[] = {
      "bool", "int", "unsigned", "long", "short", "char", "float", "double",
      "size_t", "std::size_t", "ptrdiff_t", "std::ptrdiff_t",
      "int8_t", "int16_t", "int32_t", "int64_t",
      "uint8_t", "uint16_t", "uint32_t", "uint64_t",
      "std::int8_t", "std::int16_t", "std::int32_t", "std::int64_t",
      "std::uint8_t", "std::uint16_t", "std::uint32_t", "std::uint64_t",
      // Project-local integer aliases (net/address.hpp, net/forwarding.hpp).
      "NodeId", "LinkId", "AsId", "IfIndex",
  };
  if (type_tokens.empty()) return false;
  for (const std::string& t : type_tokens) {
    bool known = false;
    for (std::string_view s : kScalars) {
      if (t == s) {
        known = true;
        break;
      }
    }
    if (!known) return false;  // any non-scalar token (vector<...>, const, &) disqualifies
  }
  return true;
}

/// Structural scan for scalar members lacking initializers. Tracks brace
/// scopes and classifies each '{' as record (struct/class/union), enum, or
/// other (function body, namespace, initializer) from the tokens preceding
/// it; member statements are only inspected directly inside record scopes.
void check_uninit_members(const std::string& path, const std::string& stripped,
                          const std::vector<std::string>& raw_lines,
                          std::vector<Violation>& out) {
  enum class Scope { kRecord, kOther };
  std::vector<Scope> scopes;
  std::string stmt;           // tokens since the last ';' '{' '}' at this level
  std::size_t stmt_line = 1;  // line where the current statement started
  std::size_t lineno = 1;
  bool stmt_started = false;

  auto flush_member_check = [&](const std::string& statement, std::size_t at_line) {
    if (scopes.empty() || scopes.back() != Scope::kRecord) return;
    std::istringstream is(statement);
    std::vector<std::string> tokens;
    std::string tok;
    while (is >> tok) tokens.push_back(tok);
    if (tokens.empty()) return;
    // Skip declarations that are not plain data members.
    static const std::string_view kSkipLead[] = {
        "using", "typedef", "friend", "static", "constexpr", "template",
        "enum", "struct", "class", "return", "explicit", "virtual", "operator",
    };
    for (std::string_view s : kSkipLead) {
      if (tokens.front() == s) return;
    }
    std::string body;
    for (const std::string& t : tokens) {
      if (!body.empty()) body.push_back(' ');
      body += t;
    }
    if (body.find('=') != std::string::npos) return;   // has initializer
    if (body.find('(') != std::string::npos) return;   // function decl
    if (body.find('[') != std::string::npos) return;   // array (rare; audit by hand)
    if (body.find('#') != std::string::npos) return;   // preprocessor remnant
    // A lone ':' (not part of a '::' qualifier) marks a bitfield.
    for (std::size_t k = 0; k < body.size(); ++k) {
      if (body[k] == ':' && (k == 0 || body[k - 1] != ':') &&
          (k + 1 == body.size() || body[k + 1] != ':')) {
        return;
      }
    }
    // Last token is the member name; everything before must be scalar type tokens.
    if (tokens.size() < 2) return;
    std::string name = tokens.back();
    std::vector<std::string> type_tokens(tokens.begin(), tokens.end() - 1);
    if (!type_tokens.empty() && type_tokens.front() == "mutable") {
      type_tokens.erase(type_tokens.begin());
    }
    if (!is_scalar_type(type_tokens)) return;
    std::string raw = at_line - 1 < raw_lines.size() ? trim(raw_lines[at_line - 1]) : "";
    out.push_back({path, at_line, "uninit-member",
                   "scalar member '" + name +
                       "' has no default initializer; an unwritten read is UB "
                       "and diverges run to run",
                   raw});
  };

  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const char c = stripped[i];
    if (c == '\n') {
      ++lineno;
      stmt.push_back(' ');
      continue;
    }
    if (c == '{') {
      // Classify this scope from the pending statement text.
      const bool is_record = (contains_token(stmt, "struct") || contains_token(stmt, "class") ||
                              contains_token(stmt, "union")) &&
                             !contains_token(stmt, "enum") &&
                             stmt.find('(') == std::string::npos &&
                             stmt.find('=') == std::string::npos;
      scopes.push_back(is_record ? Scope::kRecord : Scope::kOther);
      stmt.clear();
      stmt_started = false;
      continue;
    }
    if (c == '}') {
      if (!scopes.empty()) scopes.pop_back();
      stmt.clear();
      stmt_started = false;
      continue;
    }
    if (c == ';') {
      flush_member_check(stmt, stmt_line);
      stmt.clear();
      stmt_started = false;
      continue;
    }
    if (c == ':') {
      // Access specifiers end a "statement" of their own; splitting here
      // keeps the next member's reported line accurate.
      const std::string t = trim(stmt);
      if (t == "public" || t == "private" || t == "protected") {
        stmt.clear();
        stmt_started = false;
        continue;
      }
    }
    if (!stmt_started && std::isspace(static_cast<unsigned char>(c)) == 0) {
      stmt_started = true;
      stmt_line = lineno;
    }
    stmt.push_back(c);
  }
}

/// Structural scan for mutable function-local statics in hot-path
/// subsystems. Same scope walk as check_uninit_members, but classifying
/// namespaces and enums too, so only genuine function-body scopes are
/// inspected (a namespace-scope `static` is internal linkage, not a local).
void check_static_locals(const std::string& path, const std::string& stripped,
                         const std::vector<std::string>& raw_lines,
                         std::vector<Violation>& out) {
  if (!in_hot_path(path) || in_randomness_module(path)) return;
  enum class Scope { kNamespace, kRecord, kEnum, kBody };
  std::vector<Scope> scopes;
  std::string stmt;
  std::size_t stmt_line = 1;
  std::size_t lineno = 1;
  bool stmt_started = false;

  auto flush = [&](const std::string& statement, std::size_t at_line) {
    if (scopes.empty() || scopes.back() != Scope::kBody) return;
    std::istringstream is(statement);
    std::string first;
    if (!(is >> first)) return;
    if (first != "static" && first != "thread_local") return;
    if (contains_token(statement, "const") || contains_token(statement, "constexpr") ||
        contains_token(statement, "constinit")) {
      return;
    }
    std::string raw = at_line - 1 < raw_lines.size() ? trim(raw_lines[at_line - 1]) : "";
    out.push_back({path, at_line, "static-local",
                   "mutable function-local static in a hot-path subsystem: hidden "
                   "global state that outlives the run and races under a sharded "
                   "event loop",
                   raw});
  };

  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const char c = stripped[i];
    if (c == '\n') {
      ++lineno;
      stmt.push_back(' ');
      continue;
    }
    if (c == '{') {
      Scope s = Scope::kBody;
      if (contains_token(stmt, "namespace")) {
        s = Scope::kNamespace;
      } else if (contains_token(stmt, "enum")) {
        s = Scope::kEnum;
      } else if ((contains_token(stmt, "struct") || contains_token(stmt, "class") ||
                  contains_token(stmt, "union")) &&
                 stmt.find('(') == std::string::npos && stmt.find('=') == std::string::npos) {
        s = Scope::kRecord;
      }
      scopes.push_back(s);
      stmt.clear();
      stmt_started = false;
      continue;
    }
    if (c == '}') {
      if (!scopes.empty()) scopes.pop_back();
      stmt.clear();
      stmt_started = false;
      continue;
    }
    if (c == ';') {
      flush(stmt, stmt_line);
      stmt.clear();
      stmt_started = false;
      continue;
    }
    if (c == ':') {
      const std::string t = trim(stmt);
      if (t == "public" || t == "private" || t == "protected") {
        stmt.clear();
        stmt_started = false;
        continue;
      }
    }
    if (!stmt_started && std::isspace(static_cast<unsigned char>(c)) == 0) {
      stmt_started = true;
      stmt_line = lineno;
    }
    stmt.push_back(c);
  }
}

/// Pass 1 of unordered-merge: declarator names of unordered containers.
void collect_unordered_names(const std::string& stripped_line,
                             std::vector<std::string>& names) {
  static const std::string_view kContainers[] = {"unordered_map", "unordered_set",
                                                 "unordered_multimap", "unordered_multiset"};
  for (std::string_view cont : kContainers) {
    std::size_t pos = stripped_line.find(cont);
    if (pos == std::string::npos) continue;
    std::size_t i = stripped_line.find('<', pos);
    if (i == std::string::npos) return;
    int depth = 0;
    for (; i < stripped_line.size(); ++i) {
      if (stripped_line[i] == '<') ++depth;
      if (stripped_line[i] == '>' && --depth == 0) {
        ++i;
        break;
      }
    }
    while (i < stripped_line.size() &&
           std::isspace(static_cast<unsigned char>(stripped_line[i])) != 0) {
      ++i;
    }
    std::string name;
    while (i < stripped_line.size() && is_ident_char(stripped_line[i])) {
      name.push_back(stripped_line[i++]);
    }
    if (!name.empty()) names.push_back(std::move(name));
    return;
  }
}

/// Pass 2 of unordered-merge: a range-for whose range is one of the
/// collected names iterates in hash order.
void check_unordered_merge(const std::string& path, std::size_t lineno,
                           const std::string& stripped, const std::string& raw,
                           const std::vector<std::string>& unordered_names,
                           std::vector<Violation>& out) {
  if (!contains_token(stripped, "for")) return;
  const std::size_t colon = stripped.find(':');
  if (colon == std::string::npos) return;
  for (const std::string& name : unordered_names) {
    std::size_t pos = stripped.find(name, colon);
    while (pos != std::string::npos) {
      const bool left_ok = pos == 0 || !is_ident_char(stripped[pos - 1]);
      const std::size_t end = pos + name.size();
      const bool right_ok = end >= stripped.size() || !is_ident_char(stripped[end]);
      if (left_ok && right_ok) {
        out.push_back({path, lineno, "unordered-merge",
                       "range-for over unordered container '" + name +
                           "': hash-order iteration feeding merged or exported "
                           "output is not reproducible across stdlib versions",
                       trim(raw)});
        return;
      }
      pos = stripped.find(name, pos + 1);
    }
  }
}

// -------------------------------------------------------------- driver ---

std::optional<std::vector<AllowEntry>> load_allowlist(const std::string& file) {
  std::ifstream in(file);
  if (!in) return std::nullopt;
  std::vector<AllowEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    std::istringstream is(t);
    AllowEntry e;
    is >> e.check >> e.path_suffix;
    std::string rest;
    std::getline(is, rest);
    e.line_substring = trim(rest);
    if (e.check.empty() || e.path_suffix.empty()) {
      std::cerr << "detlint: malformed allowlist line: " << line << "\n";
      return std::nullopt;
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

bool is_allowed(const Violation& v, const std::vector<AllowEntry>& allow) {
  for (const AllowEntry& e : allow) {
    if (e.check != v.check && e.check != "*") continue;
    if (!ends_with_path(v.file, e.path_suffix)) continue;
    if (!e.line_substring.empty() &&
        v.source_line.find(e.line_substring) == std::string::npos) {
      continue;
    }
    e.used = true;
    return true;
  }
  return false;
}

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string allowlist_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allowlist") {
      if (i + 1 >= argc) {
        std::cerr << "detlint: --allowlist requires a file argument\n";
        return 2;
      }
      allowlist_file = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: detlint [--allowlist FILE] DIR...\n";
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: detlint [--allowlist FILE] DIR...\n";
    return 2;
  }

  std::vector<AllowEntry> allow;
  if (!allowlist_file.empty()) {
    auto loaded = load_allowlist(allowlist_file);
    if (!loaded) {
      std::cerr << "detlint: cannot read allowlist " << allowlist_file << "\n";
      return 2;
    }
    allow = std::move(*loaded);
  }

  std::vector<Violation> violations;
  std::size_t files_scanned = 0;
  for (const std::string& root : roots) {
    if (!fs::exists(root)) {
      std::cerr << "detlint: no such path: " << root << "\n";
      return 2;
    }
    std::vector<fs::path> files;
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && scannable(entry.path())) files.push_back(entry.path());
      }
    } else {
      files.push_back(root);
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& p : files) {
      std::ifstream in(p);
      if (!in) {
        std::cerr << "detlint: cannot read " << p << "\n";
        return 2;
      }
      std::stringstream buf;
      buf << in.rdbuf();
      const std::string raw = buf.str();
      const std::string stripped = strip_comments_and_strings(raw);
      const std::vector<std::string> raw_lines = split_lines(raw);
      const std::vector<std::string> stripped_lines = split_lines(stripped);
      const std::string path = p.generic_string();
      std::vector<std::string> unordered_names;
      for (const std::string& line : stripped_lines) {
        collect_unordered_names(line, unordered_names);
      }
      for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
        check_line_tokens(path, i + 1, stripped_lines[i],
                          i < raw_lines.size() ? raw_lines[i] : "", violations);
        check_unordered_merge(path, i + 1, stripped_lines[i],
                              i < raw_lines.size() ? raw_lines[i] : "", unordered_names,
                              violations);
      }
      check_uninit_members(path, stripped, raw_lines, violations);
      check_static_locals(path, stripped, raw_lines, violations);
      ++files_scanned;
    }
  }

  std::size_t reported = 0, allowed = 0;
  for (const Violation& v : violations) {
    if (is_allowed(v, allow)) {
      ++allowed;
      continue;
    }
    ++reported;
    std::cerr << v.file << ":" << v.line << ": [" << v.check << "] " << v.message << "\n";
    if (!v.source_line.empty()) std::cerr << "    " << v.source_line << "\n";
  }
  for (const AllowEntry& e : allow) {
    if (!e.used) {
      std::cerr << "detlint: warning: unused allowlist entry: " << e.check << " "
                << e.path_suffix << (e.line_substring.empty() ? "" : " " + e.line_substring)
                << "\n";
    }
  }
  std::cerr << "detlint: " << files_scanned << " files, " << reported << " violation"
            << (reported == 1 ? "" : "s") << " (" << allowed << " allowlisted)\n";
  return reported == 0 ? 0 : 1;
}
